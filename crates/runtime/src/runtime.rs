//! The public runtime façade: spawn tasks, declare dependencies, wait.
//!
//! The spawn→ready→execute→complete hot path is lock-free in the common
//! case: task bookkeeping lives in a generation-counted slab
//! ([`crate::task::TaskSlab`]) instead of a global table, dependency
//! discovery goes through the region-sharded
//! [`crate::deps::ShardedDepTracker`], readiness is a per-slot atomic
//! pending count, and completion accounting is an atomic outstanding
//! counter. The only locks on a clean spawn are the task's own slot
//! mutex and the tracker shards its regions hash to — two concurrent
//! spawns or completions on unrelated tasks share no lock at all.
//!
//! Fault tolerance (see [`crate::fault`]) threads through here:
//!
//! * every task body is wrapped with a *preflight* that fails fast on
//!   poisoned input regions and applies the configured fault-injection
//!   plan (deterministic panics / stalls, for campaigns);
//! * a panicking task declared idempotent is re-enqueued by the
//!   [`RetryPolicy`] with capped exponential backoff;
//! * a task that settles as failed **poisons the regions it declared as
//!   written**: downstream readers fail fast with a structured
//!   [`TaskError::Poisoned`] instead of consuming garbage, and the poison
//!   propagates transitively. A later task that fully overwrites a
//!   poisoned range (`out` access) cleanses it — recovery tasks use
//!   exactly this to repair data after a failure. Poison propagation
//!   walks the slab under per-slot locks; it never takes a global one.
//!
//! Multi-tenancy (see [`crate::job`]) layers on top: `Runtime::submit`
//! opens a [`JobHandle`] whose tasks carry their own fault domain
//! (retry policy, fault plan, failures, poison) and dependency
//! namespace; `Runtime::task` spawns into an implicit *default job*, so
//! single-tenant code is unchanged. Admission control bounds in-flight
//! tasks per job and globally, best-effort jobs shed load under
//! pressure, and [`Runtime::drain`] winds the whole runtime down within
//! a deadline.

use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::fault::{
    FaultPlan, FaultReport, InjectedFault, RetryPolicy, TaskError, TaskFailure, WatchdogConfig,
};
use crate::flight::{FlightBundle, FlightReason};
use crate::graph::TaskGraph;
use crate::job::{
    cleanse, AdmissionError, DrainReport, JobId, JobSpec, JobState, JobStats, JobTable,
    PoisonedRegion,
};
use crate::pool::{Completion, PoolClient, PoolOptions, PoolStatsHandle, WorkerPool};
use crate::program::{SinkGuard, TaskProgram};
use crate::region::{Access, AccessMode, DataHandle, Region};
use crate::scheduler::{QosClass, ReadyQueues, ReadyTask, SchedulerPolicy};
use crate::stats::{
    ContentionReport, RuntimeStats, StatsSnapshot, StripedGauge, RETRY_HIST_BUCKETS,
};
use crate::task::{Criticality, ExecBody, TaskBody, TaskId, TaskMeta, TaskRef, TaskSlab};
use crate::telemetry::{
    detect, SamplerShared, TelemetryDelta, TelemetrySnapshot, TenantTelemetry, TriggerRules,
    SAMPLE_INTERVAL,
};
use crate::topology::{Topology, NO_HOME};
use crate::trace::{Trace, TraceConfig, TraceEventKind, TraceSession, Tracer};

/// Node budget for the backward bottom-level relaxation at spawn. The
/// offline [`crate::criticality::OnlineCriticality`] estimator relaxes
/// ancestors without bound, which is O(depth) per spawn — quadratic on a
/// chain. The hot path caps the walk instead: deep ancestry beyond the
/// budget keeps a stale (under-estimated) bottom level, which can only
/// misclassify criticality, never correctness.
const RELAX_BUDGET: u32 = 64;

/// Observation hooks around task execution — the attachment point for
/// runtime-aware hardware models (e.g. the RSU in `raa-core`): the
/// runtime notifies the hardware when a task starts on a worker (with
/// its criticality) and when it completes.
///
/// A task skipped because of a poisoned input reports [`on_skipped`]
/// (*not* `on_start`/`on_complete`/`on_fault` — from the hardware's
/// perspective it never executed). An injected pre-body panic reports
/// `on_start` then `on_fault` like any other panicking attempt. A
/// retried task reports one start/complete pair per successful attempt
/// (failed attempts report start/fault).
///
/// Observers are one consumer of the runtime's [`TraceSession`]; the
/// other is the event tracer enabled via [`RuntimeConfig::tracing`].
///
/// [`on_skipped`]: TaskObserver::on_skipped
pub trait TaskObserver: Send + Sync + 'static {
    /// Called on the worker thread immediately before the body runs.
    fn on_start(&self, worker: usize, task: TaskId, critical: bool);
    /// Called on the worker thread after the body finished.
    fn on_complete(&self, worker: usize, task: TaskId);
    /// Called on the worker thread when the body panics; `on_complete`
    /// is *not* called for that attempt. Observers holding per-core
    /// state keyed by `on_start` (e.g. an RSU frequency grant) must
    /// release it here or it leaks across retries.
    fn on_fault(&self, worker: usize, task: TaskId) {
        let _ = (worker, task);
    }
    /// Called on the worker thread when a task is skipped without running
    /// because an input region was poisoned by an upstream failure.
    /// `on_start` was never called for it, so there is no per-core state
    /// to release — this hook exists so observers can account for every
    /// settled task.
    fn on_skipped(&self, worker: usize, task: TaskId) {
        let _ = (worker, task);
    }
}

/// Fan the runtime's single observer slot out to any number of
/// observers: every lifecycle hook is forwarded to each registered
/// observer in registration order. This is how an RSU driver, a timing
/// recorder and anything else attach to the *same* run without each
/// caller hand-rolling a wrapper struct.
///
/// ```
/// use std::sync::Arc;
/// use raa_runtime::runtime::ObserverFanout;
/// # use raa_runtime::{runtime::TaskObserver, TaskId};
/// # struct A; impl TaskObserver for A {
/// #     fn on_start(&self, _: usize, _: TaskId, _: bool) {}
/// #     fn on_complete(&self, _: usize, _: TaskId) {}
/// # }
/// let fanout = ObserverFanout::new().with(Arc::new(A)).with(Arc::new(A));
/// assert_eq!(fanout.len(), 2);
/// ```
#[derive(Default)]
pub struct ObserverFanout {
    observers: Vec<Arc<dyn TaskObserver>>,
}

impl ObserverFanout {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style registration.
    pub fn with(mut self, obs: Arc<dyn TaskObserver>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Register one more observer.
    pub fn push(&mut self, obs: Arc<dyn TaskObserver>) {
        self.observers.push(obs);
    }

    pub fn len(&self) -> usize {
        self.observers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl TaskObserver for ObserverFanout {
    fn on_start(&self, worker: usize, task: TaskId, critical: bool) {
        for o in &self.observers {
            o.on_start(worker, task, critical);
        }
    }

    fn on_complete(&self, worker: usize, task: TaskId) {
        for o in &self.observers {
            o.on_complete(worker, task);
        }
    }

    fn on_fault(&self, worker: usize, task: TaskId) {
        for o in &self.observers {
            o.on_fault(worker, task);
        }
    }

    fn on_skipped(&self, worker: usize, task: TaskId) {
        for o in &self.observers {
            o.on_skipped(worker, task);
        }
    }
}

/// Runtime construction parameters.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// Number of worker threads (>= 1).
    pub workers: usize,
    /// Ready-task scheduling policy.
    pub policy: SchedulerPolicy,
    /// Worker cluster topology for two-level work stealing (default:
    /// flat — one cluster spanning the pool, which preserves the
    /// pre-hierarchy scheduling behaviour exactly). When set, its
    /// `workers()` must equal [`RuntimeConfig::workers`]: thieves then
    /// steal intra-cluster first, an inter-cluster balancer moves
    /// batches on sustained misses, and external spawns route to the
    /// cluster owning the task's declared region/SPM footprint.
    pub topology: Option<Topology>,
    /// Record the full TDG for later analysis / dot export (adds a clone
    /// of each task's metadata; off by default).
    pub record_graph: bool,
    /// Record a full [`TaskProgram`]: the TDG (implies
    /// [`RuntimeConfig::record_graph`]) plus each task's measured
    /// duration and any classified reference stream its body emitted via
    /// [`crate::program::emit`]. Retrieve with [`Runtime::program`].
    /// Off by default.
    pub record_program: bool,
    /// Threshold for the online criticality estimator (fraction of the
    /// longest path; see [`crate::criticality::OnlineCriticality`]).
    pub criticality_threshold: f64,
    /// Optional execution observer (see [`TaskObserver`]).
    pub observer: Option<Arc<dyn TaskObserver>>,
    /// Retry policy for idempotent tasks (default: no retry).
    pub retry: RetryPolicy,
    /// Deterministic fault-injection plan (default: none).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Worker watchdog (default: disabled).
    pub watchdog: WatchdogConfig,
    /// Event tracing (default: off). When set, every scheduling decision
    /// is recorded into per-worker ring buffers; drain with
    /// [`Runtime::drain_trace`].
    pub trace: Option<TraceConfig>,
    /// Global cap on admitted (in-flight) tasks across all jobs
    /// (default: unbounded). At the cap, `TaskBuilder::try_spawn`
    /// returns [`AdmissionError::Busy`] and `spawn` blocks.
    pub max_in_flight: Option<usize>,
    /// Cap on concurrently live jobs accepted by [`Runtime::submit`]
    /// (default: unbounded; the implicit default job is not counted).
    pub max_jobs: Option<usize>,
    /// Load-shedding watermark: once the global in-flight count reaches
    /// it, tasks of [`QosClass::BestEffort`] jobs are dropped at
    /// admission (default: never shed).
    pub shed_watermark: Option<usize>,
    /// Adaptive overload control (default: off). When set, the runtime
    /// smooths each task's admission→first-dispatch delay and sheds
    /// [`QosClass::BestEffort`] admissions while the smoothed delay
    /// exceeds this budget (recovering hysteretically below half of it;
    /// see [`crate::overload::ShedController`]). Unlike
    /// [`RuntimeConfig::shed_watermark`], the trigger tracks what an SLO
    /// cares about — queueing delay — instead of a fixed in-flight count.
    pub shed_delay_budget: Option<Duration>,
    /// Straggler hedging (default: off). When set, a worker stuck on one
    /// *idempotent* task longer than `max(soft_timeout, 4 × the job's
    /// cost_hint)` gets a duplicate of that task enqueued by the
    /// watchdog; whichever copy settles first wins and the loser's
    /// completion is discarded. Requires the watchdog (enabled
    /// implicitly when this is set).
    pub soft_timeout: Option<Duration>,
    /// Live telemetry plane + always-on flight recorder (default: off).
    /// When set, workers record latency histograms into per-worker
    /// cells ([`crate::telemetry::TelemetryPlane`]), a background
    /// sampler produces periodic [`TelemetryDelta`]s and runs the
    /// anomaly [`TriggerRules`], and faults (worker death, deadline
    /// miss, DUE, drain timeout) capture post-mortem
    /// [`FlightBundle`]s. Disabled, every hook is one `Option`
    /// discriminant check — the PR 4 disabled-is-free discipline.
    ///
    /// [`TelemetryDelta`]: crate::telemetry::TelemetryDelta
    /// [`TriggerRules`]: crate::telemetry::TriggerRules
    /// [`FlightBundle`]: crate::flight::FlightBundle
    pub telemetry: bool,
}

impl std::fmt::Debug for RuntimeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeConfig")
            .field("workers", &self.workers)
            .field("policy", &self.policy)
            .field("topology", &self.topology)
            .field("record_graph", &self.record_graph)
            .field("record_program", &self.record_program)
            .field("criticality_threshold", &self.criticality_threshold)
            .field("observer", &self.observer.is_some())
            .field("retry", &self.retry)
            .field("fault_plan", &self.fault_plan.is_some())
            .field("watchdog", &self.watchdog)
            .field("trace", &self.trace)
            .field("max_in_flight", &self.max_in_flight)
            .field("max_jobs", &self.max_jobs)
            .field("shed_watermark", &self.shed_watermark)
            .field("shed_delay_budget", &self.shed_delay_budget)
            .field("soft_timeout", &self.soft_timeout)
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            policy: SchedulerPolicy::WorkStealing,
            topology: None,
            record_graph: false,
            record_program: false,
            criticality_threshold: 0.9,
            observer: None,
            retry: RetryPolicy::default(),
            fault_plan: None,
            watchdog: WatchdogConfig::default(),
            trace: None,
            max_in_flight: None,
            max_jobs: None,
            shed_watermark: None,
            shed_delay_budget: None,
            soft_timeout: None,
            telemetry: false,
        }
    }
}

impl RuntimeConfig {
    /// A config with `workers` threads and default policy.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeConfig {
            workers,
            ..Default::default()
        }
    }

    /// Builder-style policy override.
    pub fn policy(mut self, policy: SchedulerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style cluster topology: group the workers into
    /// `topology.clusters` clusters for two-level work stealing. Also
    /// sets the worker count to `topology.workers()` so the two can
    /// never disagree.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.workers = topology.workers();
        self.topology = Some(topology);
        self
    }

    /// Builder-style graph recording toggle.
    pub fn record_graph(mut self, on: bool) -> Self {
        self.record_graph = on;
        self
    }

    /// Builder-style program recording toggle (TDG + measured durations
    /// + classified reference streams; see [`Runtime::program`]).
    pub fn record_program(mut self, on: bool) -> Self {
        self.record_program = on;
        self
    }

    /// Attach an execution observer (runtime-aware hardware models).
    pub fn observer(mut self, obs: Arc<dyn TaskObserver>) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Builder-style retry policy for idempotent tasks.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attach a deterministic fault-injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Builder-style watchdog configuration.
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Enable event tracing (see [`crate::trace`]).
    pub fn tracing(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Per-task retry budget for idempotent tasks: `retries`
    /// re-executions after the first attempt (0 disables retry, the
    /// default). Shorthand for `retry(RetryPolicy::retries(..))` that
    /// keeps the default backoff.
    pub fn retry_budget(mut self, retries: u32) -> Self {
        self.retry.max_attempts = retries + 1;
        self
    }

    /// Override the watchdog's stall timeout in place (a busy worker
    /// whose heartbeat is frozen this long counts as stalled). Composes
    /// with [`RuntimeConfig::watchdog`] in either order.
    pub fn stall_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.watchdog = self.watchdog.stall_timeout(timeout);
        self
    }

    /// Override the watchdog's heartbeat monitor period in place.
    pub fn heartbeat_interval(mut self, interval: std::time::Duration) -> Self {
        self.watchdog = self.watchdog.interval(interval);
        self
    }

    /// Builder-style global in-flight task cap (>= 1).
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "a zero cap would admit nothing");
        self.max_in_flight = Some(cap);
        self
    }

    /// Builder-style cap on concurrently live submitted jobs.
    pub fn max_jobs(mut self, cap: usize) -> Self {
        self.max_jobs = Some(cap);
        self
    }

    /// Builder-style best-effort shed watermark.
    pub fn shed_watermark(mut self, watermark: usize) -> Self {
        self.shed_watermark = Some(watermark);
        self
    }

    /// Builder-style adaptive shed budget: shed best-effort admissions
    /// while the smoothed admission→dispatch delay exceeds `budget`.
    pub fn shed_delay_budget(mut self, budget: Duration) -> Self {
        self.shed_delay_budget = Some(budget);
        self
    }

    /// Builder-style straggler soft timeout: hedge a duplicate of an
    /// idempotent task whose attempt has run longer than this.
    pub fn soft_timeout(mut self, timeout: Duration) -> Self {
        self.soft_timeout = Some(timeout);
        self
    }

    /// Builder-style telemetry toggle: enable the live metrics plane,
    /// the background sampler and the flight recorder.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }
}

/// Recorded spawn log: each task's metadata plus its predecessor ids.
type RecordedGraph = Vec<(TaskMeta, Vec<TaskId>)>;

/// Measurement side of program recording (cold path: pushed once per
/// completed task body, read once at [`Runtime::program`]).
#[derive(Default)]
struct ProgramCapture {
    /// Measured wall-clock duration per successful body run.
    durations: Mutex<Vec<(TaskId, u64)>>,
    /// Classified reference streams emitted via [`crate::program::emit`].
    streams: Mutex<Vec<(TaskId, Vec<raa_workloads::trace::TraceEvent>)>>,
    /// SPM-mapped layout ranges declared by the program.
    spm_ranges: Mutex<Vec<(u64, u64)>>,
}

/// Drain lifecycle states (see [`Runtime::drain`]).
const LIFECYCLE_RUNNING: u8 = 0;
const LIFECYCLE_DRAINING: u8 = 1;
const LIFECYCLE_DRAINED: u8 = 2;

/// Deadline-reaper heap entry; ordered earliest-deadline-first under
/// `BinaryHeap`'s max-heap by reversing the comparison.
struct ReapAt {
    at: Instant,
    job: Weak<JobState>,
}

impl PartialEq for ReapAt {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl Eq for ReapAt {}
impl PartialOrd for ReapAt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReapAt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at)
    }
}

/// How long a quiescence waiter sleeps between polls of the striped
/// `outstanding` sum. Completions do not notify (see `Shared
/// ::outstanding`), so this bounds the wake-up latency after the last
/// task settles; it is far below any measurable wait while keeping the
/// idle-poll cost negligible.
const QUIESCE_POLL: Duration = Duration::from_micros(200);

struct Shared {
    slab: TaskSlab,
    tracker: crate::deps::ShardedDepTracker,
    /// Time origin shared with [`ReadyQueues`]: task deadlines travel
    /// through the scheduler as nanoseconds since this instant.
    epoch: Instant,
    /// Resolved worker cluster map (flat unless
    /// [`RuntimeConfig::topology`] was set). `fill_slot` derives each
    /// task's home cluster from it.
    topology: Topology,
    /// Declared SPM layout ranges `(base, bytes)` from
    /// [`Runtime::declare_spm_ranges`], used to map a task's first
    /// region onto the tile that owns it; empty until declared.
    /// `spm_declared` gates the lock off the spawn hot path.
    spm_map: Mutex<Vec<(u64, u64)>>,
    spm_declared: AtomicBool,
    /// Tasks spawned but not yet settled. Incremented before a task is
    /// visible anywhere. Striped: completion touches only a local line
    /// and never notifies; quiescence waiters poll the stripe sum on a
    /// short bounded condvar wait (`wait_cv` still fires eagerly on
    /// termination).
    outstanding: StripedGauge,
    wait: Mutex<()>,
    wait_cv: Condvar,
    next_id: AtomicU32,
    stats: RuntimeStats,
    /// The implicit job behind `Runtime::task` / `Runtime::try_taskwait`
    /// (index 0 of `jobs`, never removed). Failures, retry policy and
    /// poison for untagged spawns live in its fault domain.
    default_job: Arc<JobState>,
    /// All live jobs. Locked only on submit/retire/drain and the rare
    /// whole-runtime poison paths — never on the spawn/complete hot path.
    jobs: Mutex<JobTable>,
    /// Monotonic fast-path flag: set when poison was ever recorded in
    /// *any* job, so clean runs never touch poison state in the
    /// preflight. Only [`Runtime::clear_poison`] resets it.
    has_poison: AtomicBool,
    /// Monotonic fast-path flag: set when any job was ever cancelled, so
    /// the preflight of a never-cancelled runtime skips the slot lock.
    any_cancelled: AtomicBool,
    /// Drain state machine: Running → Draining → Drained.
    lifecycle: AtomicU8,
    /// Set by a forced drain: the pool is shutting down without joining,
    /// and every waiter must stop blocking on the outstanding count.
    terminated: AtomicBool,
    /// Non-exempt tasks currently admitted, maintained only when a
    /// global cap or shed watermark is configured (`track_admitted`).
    admitted: AtomicU64,
    track_admitted: bool,
    admission_lock: Mutex<()>,
    admission_cv: Condvar,
    /// Spawners currently blocked on admission (wake-up gating).
    admission_waiters: AtomicUsize,
    /// Recorded TDG when [`RuntimeConfig::record_graph`] is on (cold
    /// path: the lock is fine, recording already clones metadata).
    recorded: Option<Mutex<RecordedGraph>>,
    /// Measured durations + reference streams when
    /// [`RuntimeConfig::record_program`] is on.
    capture: Option<ProgramCapture>,
    /// Online criticality: longest observed bottom level, and the
    /// threshold as a num/den ratio (per-slot levels live in the slab).
    max_bl: AtomicU64,
    crit_num: u64,
    crit_den: u64,
    /// Event tracer, when [`RuntimeConfig::trace`] is set.
    tracer: Option<Arc<Tracer>>,
    /// Adaptive overload controller, when
    /// [`RuntimeConfig::shed_delay_budget`] is set.
    shed: Option<crate::overload::ShedController>,
    /// Straggler-hedging threshold in ns (`u64::MAX` when hedging is
    /// off); the per-job `cost_hint` can only extend it.
    soft_timeout_ns: u64,
    /// Jobs with deadlines, earliest first; serviced by the lazily
    /// spawned reaper thread.
    reaper: Mutex<std::collections::BinaryHeap<ReapAt>>,
    reaper_cv: Condvar,
    reaper_stop: AtomicBool,
    /// Lock-free metrics plane, when [`RuntimeConfig::telemetry`] is on.
    telemetry: Option<Arc<crate::telemetry::TelemetryPlane>>,
    /// Always-on flight recorder (with the plane): fault paths dump
    /// their per-worker event rings through it.
    flight: Option<Arc<crate::flight::FlightRecorder>>,
}

impl Shared {
    /// Record the failed task's written regions as poisoned *within
    /// `job`'s fault domain* and mark every in-flight task of that job
    /// reading them, so they fail fast instead of consuming garbage.
    /// Other jobs' tasks are never marked — poison does not cross fault
    /// domains.
    ///
    /// Racing spawns are covered from both sides: the flag stores (with
    /// their fence) are ordered before the slab walk, and a spawner fills
    /// its declared reads into its slot *before* it checks the flag — so
    /// either this walk sees the spawner's reads, or the spawner sees
    /// the flag and checks the poison list itself.
    fn poison_writes(&self, job: &Arc<JobState>, source: TaskId, label: &str, writes: &[Region]) {
        if writes.is_empty() {
            return;
        }
        if let Some(t) = &self.tracer {
            t.emit(TraceEventKind::Poisoned, source, 0, 0, writes.len() as u64);
        }
        job.has_poison.store(true, Ordering::SeqCst);
        self.has_poison.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        {
            let mut poisoned = job.poisoned.lock();
            for w in writes {
                poisoned.push(PoisonedRegion {
                    region: *w,
                    source,
                    source_label: label.to_string(),
                });
            }
        }
        self.slab.for_each_live(|_, slot| {
            let mut st = slot.state.lock();
            if st.exempt || st.completed || st.poisoned_by.is_some() {
                return;
            }
            if st.job.as_ref().map(|j| j.id) != Some(job.id) {
                return;
            }
            if st
                .reads
                .iter()
                .any(|r| writes.iter().any(|w| r.overlaps(w)))
            {
                st.poisoned_by = Some((source, label.to_string()));
            }
        });
    }

    /// Targeted poison recovery for one job: cleanse `region` from its
    /// poison list and unmark pending victims whose declared reads no
    /// longer overlap any remaining poison in that job. Partial overlaps
    /// leave the uncovered remainder poisoned, exactly like a partial
    /// recovery write would.
    fn clear_job_poison_region(&self, job: &JobState, region: &Region) {
        let remaining: Vec<Region> = {
            let mut poisoned = job.poisoned.lock();
            cleanse(&mut poisoned, region);
            poisoned.iter().map(|p| p.region).collect()
        };
        if remaining.is_empty() {
            job.has_poison.store(false, Ordering::SeqCst);
        }
        let job_id = job.id;
        self.slab.for_each_live(|_, slot| {
            let mut st = slot.state.lock();
            if st.completed || st.poisoned_by.is_none() {
                return;
            }
            if st.job.as_ref().map(|j| j.id) != Some(job_id) {
                return;
            }
            if !st
                .reads
                .iter()
                .any(|r| remaining.iter().any(|p| p.overlaps(r)))
            {
                st.poisoned_by = None;
            }
        });
    }

    /// Forget all poison in one job's fault domain and unmark its
    /// pending victims.
    fn clear_job_poison(&self, job: &JobState) {
        job.poisoned.lock().clear();
        let job_id = job.id;
        self.slab.for_each_live(|_, slot| {
            let mut st = slot.state.lock();
            if st.job.as_ref().map(|j| j.id) == Some(job_id) {
                st.poisoned_by = None;
            }
        });
        job.has_poison.store(false, Ordering::SeqCst);
    }

    /// Seed the new task's bottom level and relax ancestors (bounded),
    /// then classify: critical iff its level is within the configured
    /// fraction of the longest level seen so far.
    fn submit_criticality(&self, me: &TaskRef, cost: u64, preds: &[TaskRef]) -> bool {
        let slot = self.slab.slot(me.slot);
        slot.bl.store(cost, Ordering::Relaxed);
        let mut max_bl = self.max_bl.fetch_max(cost, Ordering::Relaxed).max(cost);
        let mut stack: Vec<(u32, u64, u64)> = preds.iter().map(|p| (p.slot, p.gen, cost)).collect();
        let mut budget = RELAX_BUDGET;
        while let Some((s, gen, child_bl)) = stack.pop() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let pslot = self.slab.slot(s);
            let st = pslot.state.lock();
            if pslot.gen.load(Ordering::Acquire) != gen || st.completed {
                continue;
            }
            let new_bl = st.cost.saturating_add(child_bl);
            let old = pslot.bl.fetch_max(new_bl, Ordering::Relaxed);
            if new_bl > old {
                max_bl = self.max_bl.fetch_max(new_bl, Ordering::Relaxed).max(new_bl);
                for &(ps, pg) in &st.preds {
                    stack.push((ps, pg, new_bl));
                }
            }
        }
        (cost as u128) * (self.crit_den as u128) >= (self.crit_num as u128) * (max_bl as u128)
    }

    /// Settle a task that will not retry: publish its failure/poison
    /// into its job's fault domain, free its slot and collect the
    /// successors it released. Returns the job the task belonged to
    /// (`None` for exempt sentinels) so the caller can run the job-side
    /// accounting after the global bookkeeping — or `None` overall when
    /// this completion is a *duplicate*: a hedged task's losing copy
    /// arriving after the winner already settled the slot (task ids are
    /// never reused, so a mismatched or completed slot is proof).
    #[allow(clippy::type_complexity)]
    fn settle(
        &self,
        task: TaskId,
        slot_idx: u32,
        panicked: Option<String>,
    ) -> Option<(Vec<ReadyTask>, Option<Arc<JobState>>)> {
        let slot = self.slab.slot(slot_idx);
        let (succs, label, attempts, poisoned_by, writes, job, was_cancelled) = {
            let mut st = slot.state.lock();
            if st.tid != task || st.completed {
                return None;
            }
            st.completed = true;
            (
                std::mem::take(&mut st.succs),
                std::mem::take(&mut st.label),
                st.attempts,
                st.poisoned_by.take(),
                std::mem::take(&mut st.writes),
                st.job.take(),
                st.cancelled,
            )
        };
        let mut failure = None;
        if let Some(msg) = panicked {
            failure = Some(TaskFailure {
                task,
                label: label.clone(),
                attempts,
                error: TaskError::Panicked(msg),
            });
        } else if was_cancelled {
            RuntimeStats::bump(&self.stats.tasks_cancelled);
            failure = Some(TaskFailure {
                task,
                label: label.clone(),
                attempts,
                error: TaskError::Cancelled,
            });
        } else if let Some((source, source_label)) = poisoned_by {
            RuntimeStats::bump(&self.stats.poisoned_tasks);
            failure = Some(TaskFailure {
                task,
                label: label.clone(),
                attempts,
                error: TaskError::Poisoned {
                    source,
                    source_label,
                },
            });
        } else {
            // Tasks that ran to success: bucket by failed attempts.
            let bucket = (attempts as usize).min(RETRY_HIST_BUCKETS - 1);
            RuntimeStats::bump(&self.stats.retry_hist[bucket]);
        }
        if let Some(f) = failure {
            RuntimeStats::bump(&self.stats.failed_tasks);
            if let Some(job) = &job {
                // A cancelled skip does not poison: the body never ran,
                // so nothing was half-written.
                if !matches!(f.error, TaskError::Cancelled) {
                    self.poison_writes(job, task, &label, &writes);
                }
                job.failed.fetch_add(1, Ordering::Relaxed);
                job.failures.lock().push(f);
            }
        }
        self.slab.free(slot_idx);
        let mut released = Vec::new();
        for s in succs {
            let sslot = self.slab.slot(s);
            if sslot.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let sgen = sslot.gen.load(Ordering::Relaxed);
                let mut st = sslot.state.lock();
                let body = st.body.take().expect("ready successor must have a body");
                if let Some(t) = &self.tracer {
                    t.emit(TraceEventKind::Ready, st.tid, s, sgen, 0);
                }
                released.push(ReadyTask {
                    id: st.tid,
                    slot: s,
                    gen: sgen,
                    priority: st.priority,
                    critical: st.critical,
                    deadline_ns: st.deadline_ns,
                    home: st.home,
                    seq: 0,
                    body,
                });
            }
        }
        Some((released, job))
    }

    /// Deadline expiry for one registered job. A job that already
    /// settled everything it spawned made its deadline; anything else is
    /// marked missed, and — for best-effort jobs only — cancelled, so
    /// its queued tasks settle as recorded skips through the normal
    /// cancel path. Guaranteed jobs are never reaped: their deadline
    /// drives EDF ordering, and expiry is only recorded.
    fn reap(&self, weak: &Weak<JobState>) {
        let Some(job) = weak.upgrade() else {
            return;
        };
        if job.in_flight() == 0 && job.spawned.sum() <= job.completed.sum() {
            return;
        }
        job.deadline_missed.store(true, Ordering::SeqCst);
        RuntimeStats::bump(&self.stats.jobs_deadline_missed);
        if let Some(fr) = &self.flight {
            fr.request_dump(crate::flight::FlightReason::DeadlineMiss {
                job: job.label.clone(),
            });
        }
        if !job.qos.sheddable() {
            return;
        }
        if job.cancel() {
            RuntimeStats::bump(&self.stats.jobs_cancelled);
            self.any_cancelled.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let _g = self.admission_lock.lock();
            self.admission_cv.notify_all();
        }
    }
}

/// Body of the lazily spawned deadline-reaper thread: sleep until the
/// earliest registered deadline, reap everything due, repeat. Holds the
/// heap lock only around heap surgery, not around the reaps themselves.
fn reaper_loop(shared: Arc<Shared>) {
    let mut g = shared.reaper.lock();
    loop {
        if shared.reaper_stop.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        while g.peek().is_some_and(|e| e.at <= now) {
            due.push(g.pop().expect("peeked"));
        }
        if !due.is_empty() {
            drop(g);
            for e in &due {
                shared.reap(&e.job);
            }
            g = shared.reaper.lock();
            continue;
        }
        match g.peek().map(|e| e.at) {
            Some(at) => {
                shared.reaper_cv.wait_until(&mut g, at);
            }
            None => shared.reaper_cv.wait(&mut g),
        }
    }
}

/// Merge everything the runtime already counts with the telemetry
/// plane's histograms into one [`TelemetrySnapshot`]. Lives here (not
/// in `telemetry.rs`) because `Shared` is private to this module; the
/// sampler thread and [`Runtime::telemetry_snapshot`] both call it so
/// live reads and trigger evaluation see the same numbers.
fn assemble_snapshot(
    shared: &Shared,
    queues: &ReadyQueues,
    pool: &PoolStatsHandle,
    workers: usize,
) -> TelemetrySnapshot {
    let plane = shared
        .telemetry
        .as_ref()
        .expect("snapshot assembly requires the telemetry plane");
    let mut stats = shared.stats.snapshot();
    let pf = pool.fault_stats();
    stats.worker_deaths = pf.worker_deaths;
    stats.worker_respawns = pf.worker_respawns;
    stats.worker_stalls = pf.worker_stalls;
    let (steals_ok, steals_empty, injector_overflow) = queues.contention_counters();
    stats.steals_ok = steals_ok;
    stats.steals_empty = steals_empty;
    stats.injector_overflow = injector_overflow;
    let (parks, wakes) = pool.park_stats();
    stats.parks = parks;
    stats.wakes = wakes;
    let (slab_local_frees, slab_remote_frees) = shared.slab.free_stats();
    let shed = shared
        .shed
        .as_ref()
        .map(|c| c.snapshot())
        .unwrap_or_default();
    let (queue_delay, body, job_e2e) = plane.merged();
    let tenants: Vec<TenantTelemetry> = shared
        .jobs
        .lock()
        .live()
        .iter()
        .filter(|j| !j.is_default())
        .map(|j| {
            let (queue_delay, body) = match &j.telemetry {
                Some(t) => t.snapshots(),
                None => Default::default(),
            };
            TenantTelemetry {
                id: j.id,
                label: j.label.clone(),
                qos: j.qos,
                metrics: j.metrics(),
                shed: j.shed.load(Ordering::Relaxed),
                deadline_missed: j.deadline_missed.load(Ordering::Relaxed),
                queue_delay,
                body,
            }
        })
        .collect();
    TelemetrySnapshot {
        at_ns: shared.epoch.elapsed().as_nanos() as u64,
        workers,
        alive_workers: pool.alive_workers(),
        stats,
        slab_local_frees,
        slab_remote_frees,
        shed_engaged: shed.engaged,
        shed_delay: shed.smoothed_delay,
        shed_transitions: (shed.engage_transitions, shed.recover_transitions),
        flight_dumps: shared.flight.as_ref().map_or(0, |f| f.dump_count()),
        queue_delay,
        body,
        job_e2e,
        tenants,
        per_cluster: queues.per_cluster_steals(),
    }
}

/// Body of the telemetry sampler thread: every tick, assemble a
/// snapshot, diff it against the previous one into a
/// [`TelemetryDelta`], run the [`TriggerRules`] over the movement, and
/// ask the flight recorder for a dump on every anomaly. The condvar
/// wait mirrors the reaper's stop/notify pattern so `Drop` can join
/// promptly.
fn sampler_loop(
    shared: Arc<Shared>,
    queues: Arc<ReadyQueues>,
    pool: PoolStatsHandle,
    sampler: Arc<SamplerShared>,
    rules: TriggerRules,
    workers: usize,
) {
    let mut prev = assemble_snapshot(&shared, &queues, &pool, workers);
    let mut seq = 0u64;
    // Labels that fired last tick: a persisting anomaly dumps the
    // flight rings once on its rising edge, not on every 5ms tick.
    let mut firing: Vec<&'static str> = Vec::new();
    loop {
        {
            let g = match sampler.lock.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            let _ = sampler.cv.wait_timeout(g, SAMPLE_INTERVAL);
        }
        if sampler.stop.load(Ordering::SeqCst) {
            return;
        }
        let cur = assemble_snapshot(&shared, &queues, &pool, workers);
        let anomalies = detect(&prev, &cur, &rules);
        if let Some(fr) = &shared.flight {
            for a in &anomalies {
                if !firing.contains(&a.label()) {
                    fr.request_dump(FlightReason::Anomaly { rule: a.label() });
                }
            }
        }
        firing = anomalies.iter().map(|a| a.label()).collect();
        sampler.push_delta(TelemetryDelta {
            seq,
            interval_ns: cur.at_ns.saturating_sub(prev.at_ns),
            spawned: cur.stats.spawned.saturating_sub(prev.stats.spawned),
            completed: cur.stats.completed.saturating_sub(prev.stats.completed),
            shed: cur.stats.tasks_shed.saturating_sub(prev.stats.tasks_shed),
            wakes: cur.stats.wakes.saturating_sub(prev.stats.wakes),
            steals_ok: cur.stats.steals_ok.saturating_sub(prev.stats.steals_ok),
            steals_empty: cur
                .stats
                .steals_empty
                .saturating_sub(prev.stats.steals_empty),
            queue_delay: cur.queue_delay.since(&prev.queue_delay),
            anomalies,
        });
        seq += 1;
        prev = cur;
    }
}

/// Runs on the worker thread before the user body. Returns `false` when
/// the body must be skipped (poisoned input, or the task's job was
/// cancelled). Cancelled skips mark the slot so `settle` can record a
/// [`TaskError::Cancelled`].
fn preflight(shared: &Weak<Shared>, tid: TaskId, slot: u32, exempt: bool) -> bool {
    if exempt {
        return true;
    }
    let Some(shared) = shared.upgrade() else {
        return true;
    };
    let poison = shared.has_poison.load(Ordering::Acquire);
    let cancel = shared.any_cancelled.load(Ordering::Acquire);
    if !poison && !cancel {
        return true;
    }
    let mut st = shared.slab.slot(slot).state.lock();
    if st.tid != tid {
        return true;
    }
    if cancel
        && st
            .job
            .as_ref()
            .is_some_and(|j| j.cancelled.load(Ordering::SeqCst))
    {
        st.cancelled = true;
        return false;
    }
    if poison && st.poisoned_by.is_some() {
        return false;
    }
    true
}

/// Fault injection for this attempt: panics or stalls per the plan. Runs
/// *inside* the observed bracket (after `task_start`), so an injected
/// panic reports start→fault to observers and the tracer exactly like a
/// body panic — but still *before* the user body, which is what makes
/// declaring such tasks idempotent sound in fault campaigns.
fn inject(shared: &Weak<Shared>, tid: TaskId, slot: u32, exempt: bool, plan: Option<&FaultPlan>) {
    if exempt {
        return;
    }
    let Some(plan) = plan else {
        return;
    };
    let Some(shared) = shared.upgrade() else {
        return;
    };
    let attempt = {
        let st = shared.slab.slot(slot).state.lock();
        if st.tid == tid {
            st.attempts
        } else {
            0
        }
    };
    match plan.decide(tid, attempt) {
        Some(InjectedFault::Panic) => {
            panic!("injected fault: {tid:?} attempt {attempt}");
        }
        Some(InjectedFault::Stall(d)) => std::thread::sleep(d),
        None => {}
    }
}

/// Innermost program-capture bracket: installs the thread-local stream
/// sink, times the body and, on success, files the duration and any
/// emitted events with the runtime's [`ProgramCapture`]. An unwinding
/// body records nothing (the sink guard restores the thread state and
/// discards the partial stream) — only successful attempts measure.
fn record_body(shared: &Weak<Shared>, tid: TaskId, f: impl FnOnce()) {
    let guard = SinkGuard::install();
    let t0 = std::time::Instant::now();
    f();
    let ns = t0.elapsed().as_nanos() as u64;
    let events = guard.finish();
    if let Some(shared) = shared.upgrade() {
        if let Some(cap) = &shared.capture {
            cap.durations.lock().push((tid, ns));
            if !events.is_empty() {
                cap.streams.lock().push((tid, events));
            }
        }
    }
}

/// Time `f` into the telemetry plane's body histogram (global cell +
/// the task's per-job histogram). A panicking body records nothing —
/// only successful attempts measure, matching [`record_body`]. With the
/// plane off this is a single `Option` branch around a direct call.
#[inline]
fn timed_body(
    plane: &Option<Arc<crate::telemetry::TelemetryPlane>>,
    jt: &Option<Arc<crate::telemetry::JobTelemetry>>,
    f: impl FnOnce(),
) {
    match plane {
        Some(p) => {
            let t0 = Instant::now();
            f();
            let ns = t0.elapsed().as_nanos() as u64;
            p.record_body(ns);
            if let Some(jt) = jt {
                jt.record_body(ns);
            }
        }
        None => f(),
    }
}

/// Wrap a task body with the preflight (poison fail-fast), fault
/// injection, program capture, body timing (when the telemetry plane is
/// on), and the trace-session notifications (tracer + observer). A
/// poisoned task skips without starting; an injected panic fires inside
/// the observed bracket but *before* the user body, so under pure
/// injection even a read-modify-write body never runs half-way.
#[allow(clippy::too_many_arguments)]
fn instrument(
    body: ExecBody,
    tid: TaskId,
    slot: u32,
    gen: u64,
    critical: bool,
    exempt: bool,
    capture: bool,
    shared: Weak<Shared>,
    session: Arc<TraceSession>,
    plan: Option<Arc<FaultPlan>>,
    plane: Option<Arc<crate::telemetry::TelemetryPlane>>,
    jt: Option<Arc<crate::telemetry::JobTelemetry>>,
) -> ExecBody {
    match body {
        ExecBody::Once(f) => {
            let f = f.expect("a fresh task body must be present");
            ExecBody::once(move || {
                if !preflight(&shared, tid, slot, exempt) {
                    session.task_skipped(tid, slot, gen);
                    return;
                }
                run_observed(
                    || {
                        inject(&shared, tid, slot, exempt, plan.as_deref());
                        timed_body(&plane, &jt, || {
                            if capture {
                                record_body(&shared, tid, f);
                            } else {
                                f()
                            }
                        });
                    },
                    &session,
                    tid,
                    slot,
                    gen,
                    critical,
                );
            })
        }
        ExecBody::Retryable(f) => ExecBody::retryable(move || {
            if !preflight(&shared, tid, slot, exempt) {
                session.task_skipped(tid, slot, gen);
                return;
            }
            run_observed(
                || {
                    inject(&shared, tid, slot, exempt, plan.as_deref());
                    timed_body(&plane, &jt, || {
                        if capture {
                            record_body(&shared, tid, || (*f)());
                        } else {
                            (*f)()
                        }
                    });
                },
                &session,
                tid,
                slot,
                gen,
                critical,
            );
        }),
    }
}

/// Outermost wrap for job-layer spawns: on the task's *first* dispatch
/// (retries and hedged duplicates share the one-shot guard and record
/// nothing) measure the admission→dispatch delay and feed it to the
/// job's metrics and, when configured, the adaptive shed controller.
fn with_dispatch_probe(body: ExecBody, job: Arc<JobState>, shared: Weak<Shared>) -> ExecBody {
    let admitted_at = Instant::now();
    let fired = AtomicBool::new(false);
    let sample = move || {
        if fired.swap(true, Ordering::Relaxed) {
            return;
        }
        let ns = admitted_at.elapsed().as_nanos() as u64;
        job.record_queue_delay(ns);
        if let Some(s) = shared.upgrade() {
            if let Some(ctl) = &s.shed {
                ctl.observe(ns);
            }
            if let Some(p) = &s.telemetry {
                p.record_queue_delay(ns);
            }
        }
    };
    match body {
        ExecBody::Once(f) => {
            let f = f.expect("a fresh task body must be present");
            ExecBody::once(move || {
                sample();
                f()
            })
        }
        ExecBody::Retryable(f) => ExecBody::retryable(move || {
            sample();
            (*f)()
        }),
    }
}

/// Run `f` bracketed by trace-session callbacks: `task_start` before,
/// then `task_complete` on success or `task_fault` if `f` unwinds (via
/// an armed drop guard, so the notification survives the panic
/// propagating to the pool's `catch_unwind`).
fn run_observed(
    f: impl FnOnce(),
    session: &TraceSession,
    tid: TaskId,
    slot: u32,
    gen: u64,
    critical: bool,
) {
    if session.is_idle() {
        f();
        return;
    }
    struct FaultGuard<'a> {
        session: &'a TraceSession,
        tid: TaskId,
        slot: u32,
        gen: u64,
        armed: bool,
    }
    impl Drop for FaultGuard<'_> {
        fn drop(&mut self) {
            if self.armed {
                self.session.task_fault(self.tid, self.slot, self.gen);
            }
        }
    }
    session.task_start(tid, slot, gen, critical);
    let mut guard = FaultGuard {
        session,
        tid,
        slot,
        gen,
        armed: true,
    };
    f();
    guard.armed = false;
    drop(guard);
    session.task_complete(tid, slot, gen);
}

impl PoolClient for Shared {
    fn on_complete(
        &self,
        task: TaskId,
        slot_idx: u32,
        panicked: Option<String>,
        body: ExecBody,
    ) -> Completion {
        if panicked.is_some() {
            let slot = self.slab.slot(slot_idx);
            let mut st = slot.state.lock();
            if st.tid != task || st.completed {
                // A hedged task's losing copy panicked after the winner
                // settled: the task is done, nothing to account.
                return Completion::released(Vec::new());
            }
            RuntimeStats::bump(&self.stats.panicked);
            st.attempts += 1;
            // The retry budget is the *job's*: each tenant pays for its
            // own re-executions. Cancelled jobs and a terminated runtime
            // stop retrying immediately.
            let retry_allowed = st.job.as_ref().is_some_and(|j| {
                st.attempts < j.retry.max_attempts && !j.cancelled.load(Ordering::Relaxed)
            }) && !self.terminated.load(Ordering::Relaxed);
            if st.idempotent && body.is_retryable() && retry_allowed {
                // Retry: the task stays registered and outstanding; the
                // pool re-enqueues the body after the backoff.
                RuntimeStats::bump(&self.stats.retried);
                let gen = slot.gen.load(Ordering::Relaxed);
                if let Some(t) = &self.tracer {
                    t.emit(
                        TraceEventKind::Retry,
                        task,
                        slot_idx,
                        gen,
                        st.attempts as u64,
                    );
                }
                let delay = st
                    .job
                    .as_ref()
                    .expect("retry_allowed implies a job")
                    .retry
                    .backoff_after(st.attempts);
                let retry_task = ReadyTask {
                    id: task,
                    slot: slot_idx,
                    gen,
                    priority: st.priority,
                    critical: st.critical,
                    deadline_ns: st.deadline_ns,
                    home: st.home,
                    seq: 0,
                    body,
                };
                return Completion {
                    released: Vec::new(),
                    retry: Some((retry_task, delay)),
                };
            }
        }
        let Some((released, job)) = self.settle(task, slot_idx, panicked) else {
            // Duplicate completion (hedge loser): the winner already ran
            // every piece of accounting below. Touching any counter here
            // would double-count.
            return Completion::released(Vec::new());
        };
        self.stats.completed.add(1);
        if let Some(job) = job {
            // Free the admission slot *before* waking joiners and blocked
            // spawners, so anyone woken observes the capacity. The
            // default job carries no per-job counters (see `admit`).
            if self.track_admitted {
                self.admitted.fetch_sub(1, Ordering::SeqCst);
            }
            if !job.is_default() {
                job.completed.add(1);
                job.release_in_flight();
                // Job end-to-end latency: submit → first quiescence.
                // The one-shot latch keeps a job that spawns a second
                // wave after joining from recording twice.
                if let Some(p) = &self.telemetry {
                    if !job.e2e_recorded.load(Ordering::Relaxed)
                        && job.in_flight() == 0
                        && !job.e2e_recorded.swap(true, Ordering::Relaxed)
                    {
                        p.record_job_e2e(job.created_at.elapsed().as_nanos() as u64);
                    }
                }
            }
            if self.admission_waiters.load(Ordering::SeqCst) > 0 {
                let _g = self.admission_lock.lock();
                self.admission_cv.notify_all();
            }
        }
        // The failure (if any) is published by `settle` before this
        // decrement, so a waiter that sees the count reach zero sees it.
        // No notify here: summing the striped gauge (or even signalling
        // a condvar) on every completion would recreate the shared line
        // this counter exists to avoid — quiescence waiters poll on a
        // bounded wait instead.
        self.outstanding.dec(1);
        Completion::released(released)
    }

    /// The watchdog found a worker stuck on `slot_idx` for `running_ns`.
    /// Hedge a duplicate iff the task is still live, idempotent, not
    /// already hedged, its job is not cancelled, and the attempt has
    /// outlived both the configured soft timeout and 4× the job's cost
    /// hint (a declared-slow task gets proportionally more patience).
    /// The duplicate is safe because settle is idempotent per task id:
    /// whichever copy finishes second is discarded as a duplicate.
    fn hedge_straggler(&self, slot_idx: u32, running_ns: u64) -> Option<ReadyTask> {
        if running_ns < self.soft_timeout_ns {
            return None;
        }
        let slot = self.slab.slot(slot_idx);
        if slot.gen.load(Ordering::Acquire).is_multiple_of(2) {
            return None; // freed: the task already settled
        }
        let mut st = slot.state.lock();
        if st.completed || st.cancelled || st.hedged || !st.idempotent {
            return None;
        }
        let job = st.job.as_ref()?;
        if job.cancelled.load(Ordering::Relaxed) {
            return None;
        }
        if running_ns < job.cost_hint.saturating_mul(4) {
            return None;
        }
        let body = st.hedge_body.as_ref()?.duplicate()?;
        st.hedged = true;
        RuntimeStats::bump(&self.stats.tasks_hedged);
        let gen = slot.gen.load(Ordering::Relaxed);
        Some(ReadyTask {
            id: st.tid,
            slot: slot_idx,
            gen,
            priority: st.priority,
            critical: st.critical,
            deadline_ns: st.deadline_ns,
            home: st.home,
            seq: 0,
            body,
        })
    }
}

/// The task dataflow runtime. See the crate docs for a usage example.
pub struct Runtime {
    shared: Arc<Shared>,
    pool: WorkerPool,
    queues: Arc<ReadyQueues>,
    config: RuntimeConfig,
    /// Deadline-reaper thread, spawned lazily on the first submit with a
    /// deadline and joined by `Drop`.
    reaper_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Sampler coordination block, when telemetry is on.
    sampler: Option<Arc<crate::telemetry::SamplerShared>>,
    /// Background sampler thread (with telemetry); joined by `Drop`.
    sampler_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Runtime {
    /// Start a runtime with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        let tracer = config
            .trace
            .as_ref()
            .map(|tc| Arc::new(Tracer::new(config.workers, tc)));
        // One epoch shared with the scheduler: task deadlines cross the
        // ready queues as nanoseconds since this instant.
        let epoch = Instant::now();
        // The cluster topology defaults to flat (one cluster spanning the
        // whole pool); an explicit topology must agree with the worker
        // count the pool is actually built with.
        let topology = config
            .topology
            .unwrap_or_else(|| Topology::flat(config.workers));
        assert_eq!(
            topology.workers(),
            config.workers,
            "topology worker count must match config.workers"
        );
        let queues = Arc::new(ReadyQueues::with_tracer(
            config.policy,
            topology,
            tracer.clone(),
            epoch,
        ));
        // Telemetry plane + flight recorder, both off by default. They
        // travel together: a flight dump without a snapshot to pair it
        // with is half a post-mortem.
        let plane = config
            .telemetry
            .then(|| Arc::new(crate::telemetry::TelemetryPlane::new(config.workers)));
        let flight = config
            .telemetry
            .then(|| Arc::new(crate::flight::FlightRecorder::new(config.workers)));
        // The default job inherits the runtime-level retry policy, fault
        // plan and observer: untagged spawns behave exactly as they did
        // before the job layer existed. Its per-job telemetry stays off
        // (the single-tenant hot path carries no dispatch probe), but
        // its bodies still time into the plane's worker cells.
        let session = Arc::new(TraceSession::with_flight(
            tracer.clone(),
            config.observer.clone(),
            flight.clone(),
        ));
        let default_job = Arc::new(JobState::new(
            JobId::DEFAULT,
            "default".to_string(),
            QosClass::Guaranteed,
            config.retry,
            config.fault_plan.clone(),
            session,
            None,
            None,
            0,
            None,
        ));
        let shared = Arc::new(Shared {
            slab: TaskSlab::new(),
            tracker: crate::deps::ShardedDepTracker::new(),
            epoch,
            topology,
            spm_map: Mutex::new(Vec::new()),
            spm_declared: AtomicBool::new(false),
            outstanding: StripedGauge::default(),
            wait: Mutex::new(()),
            wait_cv: Condvar::new(),
            next_id: AtomicU32::new(0),
            stats: RuntimeStats::default(),
            default_job: Arc::clone(&default_job),
            jobs: Mutex::new(JobTable::new(default_job)),
            has_poison: AtomicBool::new(false),
            any_cancelled: AtomicBool::new(false),
            lifecycle: AtomicU8::new(LIFECYCLE_RUNNING),
            terminated: AtomicBool::new(false),
            admitted: AtomicU64::new(0),
            track_admitted: config.max_in_flight.is_some() || config.shed_watermark.is_some(),
            admission_lock: Mutex::new(()),
            admission_cv: Condvar::new(),
            admission_waiters: AtomicUsize::new(0),
            recorded: (config.record_graph || config.record_program)
                .then(|| Mutex::new(Vec::new())),
            capture: config.record_program.then(ProgramCapture::default),
            max_bl: AtomicU64::new(0),
            crit_num: (config.criticality_threshold * 1000.0).round() as u64,
            crit_den: 1000,
            tracer: tracer.clone(),
            shed: config
                .shed_delay_budget
                .map(crate::overload::ShedController::new),
            soft_timeout_ns: config
                .soft_timeout
                .map_or(u64::MAX, |t| (t.as_nanos() as u64).max(1)),
            reaper: Mutex::new(std::collections::BinaryHeap::new()),
            reaper_cv: Condvar::new(),
            reaper_stop: AtomicBool::new(false),
            telemetry: plane,
            flight: flight.clone(),
        });
        let pool = WorkerPool::new(
            config.workers,
            Arc::clone(&queues),
            Arc::clone(&shared) as Arc<dyn PoolClient>,
            PoolOptions {
                plan: config.fault_plan.clone(),
                watchdog: config.watchdog,
                tracer,
                soft_timeout: config.soft_timeout,
                flight,
            },
        );
        // With telemetry on, spawn the sampler eagerly: a serving
        // process wants deltas from its first tick, and an idle sampler
        // costs one condvar timeout per 5ms.
        let (sampler, sampler_thread) = if config.telemetry {
            let sampler = Arc::new(crate::telemetry::SamplerShared::new());
            let rules = crate::telemetry::TriggerRules {
                p99_slo: config.shed_delay_budget,
                ..Default::default()
            };
            let thread = {
                let shared = Arc::clone(&shared);
                let queues = Arc::clone(&queues);
                let pool = pool.stats_handle();
                let sampler = Arc::clone(&sampler);
                let workers = config.workers;
                std::thread::Builder::new()
                    .name("raa-telemetry-sampler".into())
                    .spawn(move || sampler_loop(shared, queues, pool, sampler, rules, workers))
                    .expect("failed to spawn telemetry sampler")
            };
            (Some(sampler), Some(thread))
        } else {
            (None, None)
        };
        Runtime {
            shared,
            pool,
            queues,
            config,
            reaper_thread: Mutex::new(None),
            sampler,
            sampler_thread: Mutex::new(sampler_thread),
        }
    }

    /// Spawn the deadline-reaper thread on first use.
    fn ensure_reaper(&self) {
        let mut t = self.reaper_thread.lock();
        if t.is_none() {
            let shared = Arc::clone(&self.shared);
            *t = Some(
                std::thread::Builder::new()
                    .name("raa-deadline-reaper".into())
                    .spawn(move || reaper_loop(shared))
                    .expect("failed to spawn deadline reaper"),
            );
        }
    }

    /// Number of worker threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Workers currently alive (smaller than [`Runtime::workers`] after a
    /// death without respawn).
    pub fn alive_workers(&self) -> usize {
        self.pool.alive_workers()
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Register a datum with the runtime, producing a [`DataHandle`] whose
    /// region can carry dependencies.
    pub fn register<T>(&self, name: impl Into<String>, value: T) -> DataHandle<T> {
        DataHandle::new(name, value)
    }

    /// Begin building a task (in the implicit default job).
    pub fn task(&self, label: impl Into<String>) -> TaskBuilder<'_> {
        TaskBuilder {
            rt: self,
            job: &self.shared.default_job,
            meta: TaskMeta::new(label),
            body: None,
        }
    }

    /// Submit a task with explicit metadata and a one-shot body. Usually
    /// reached via [`Runtime::task`].
    pub fn spawn_task(&self, meta: TaskMeta, body: TaskBody) -> TaskId {
        self.spawn_exec(meta, ExecBody::Once(Some(body)))
    }

    /// Submit a task with explicit metadata and executable payload.
    pub fn spawn_exec(&self, meta: TaskMeta, body: ExecBody) -> TaskId {
        let job = Arc::clone(&self.shared.default_job);
        self.spawn_blocking(&job, meta, body)
    }

    /// Blocking spawn into `job`: waits out [`AdmissionError::Busy`];
    /// any other refusal (job cancelled, runtime draining, best-effort
    /// shed) silently discards the task — the returned id then refers to
    /// a task that never runs. Callers that need the distinction use
    /// `TaskBuilder::try_spawn`.
    fn spawn_blocking(&self, job: &Arc<JobState>, meta: TaskMeta, body: ExecBody) -> TaskId {
        match self.spawn_job(job, meta, body, true) {
            Ok(tid) => tid,
            Err(_) => {
                RuntimeStats::bump(&self.shared.stats.tasks_discarded);
                TaskId(self.shared.next_id.fetch_add(1, Ordering::Relaxed))
            }
        }
    }

    /// Admission-controlled spawn into `job`. With `block`, Busy waits
    /// for capacity (re-checking cancellation and drain on every retry);
    /// without it, Busy surfaces immediately.
    fn spawn_job(
        &self,
        job: &Arc<JobState>,
        meta: TaskMeta,
        body: ExecBody,
        block: bool,
    ) -> Result<TaskId, AdmissionError> {
        loop {
            match self.admit(job) {
                Ok(()) => break,
                Err(AdmissionError::Busy) if block => self.wait_for_capacity(),
                Err(e) => return Err(e),
            }
        }
        Ok(self.spawn_scoped(job, meta, body, false))
    }

    /// Submit a whole batch of tasks (into the implicit default job) in
    /// one pass: one admission reservation, one slab claim, one
    /// ascending-order dependency sweep and one worker wake for the
    /// entire subgraph. Intra-batch dependencies resolve exactly as if
    /// the tasks had been spawned one at a time, in batch order. Blocks
    /// while the runtime is at its in-flight cap; other refusals discard
    /// the whole batch (the returned ids then refer to tasks that never
    /// run), mirroring [`TaskBuilder::spawn`].
    pub fn spawn_many(&self, tasks: Vec<BatchTask>) -> Vec<TaskId> {
        let job = Arc::clone(&self.shared.default_job);
        self.spawn_many_blocking(&job, tasks)
    }

    /// Blocking batched spawn into `job`; see [`Runtime::spawn_many`].
    fn spawn_many_blocking(&self, job: &Arc<JobState>, mut tasks: Vec<BatchTask>) -> Vec<TaskId> {
        let shared = &*self.shared;
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        assert!(
            tasks.iter().all(|t| t.body.is_some()),
            "every batch task needs a body before spawn_many()"
        );
        // A batch wider than an in-flight cap could never be reserved
        // atomically: split to the cap and admit chunk by chunk.
        let cap = self
            .config
            .max_in_flight
            .unwrap_or(usize::MAX)
            .min(job.max_in_flight.unwrap_or(usize::MAX))
            .max(1);
        if n > cap {
            let mut ids = Vec::with_capacity(n);
            while !tasks.is_empty() {
                let rest = tasks.split_off(tasks.len().min(cap));
                ids.extend(self.spawn_many_blocking(job, tasks));
                tasks = rest;
            }
            return ids;
        }
        loop {
            match self.admit_many(job, n as u64) {
                Ok(()) => break,
                Err(AdmissionError::Busy) => self.wait_for_capacity(),
                Err(_) => {
                    shared
                        .stats
                        .tasks_discarded
                        .fetch_add(n as u64, Ordering::Relaxed);
                    let start = shared.next_id.fetch_add(n as u32, Ordering::Relaxed);
                    return (0..n as u32).map(|i| TaskId(start + i)).collect();
                }
            }
        }
        self.spawn_many_scoped(job, tasks)
    }

    /// The batched spawn protocol (the caller holds `n` admission
    /// reservations). Single-spawn protocol invariants are preserved
    /// wholesale — outstanding before tracker visibility, fill → fence →
    /// poison-flag ordering, spawn counters before the guard drop — but
    /// each serialisation point is paid once per *batch*: one
    /// `next_id` bump, one slab page claim, one shard-lock sweep, one
    /// poison fence, and one wake for every ready task at the end.
    fn spawn_many_scoped(&self, job: &Arc<JobState>, tasks: Vec<BatchTask>) -> Vec<TaskId> {
        let shared = &*self.shared;
        let n = tasks.len();
        shared.outstanding.inc(n as u64);
        let first = shared.next_id.fetch_add(n as u32, Ordering::Relaxed);
        let mut slots: Vec<(u32, u64)> = Vec::with_capacity(n);
        shared.slab.alloc_many(n, &mut slots);
        let refs: Vec<TaskRef> = slots
            .iter()
            .enumerate()
            .map(|(i, &(slot, gen))| TaskRef {
                tid: TaskId(first + i as u32),
                slot,
                gen,
            })
            .collect();
        let mut deadlines = Vec::with_capacity(n);
        for (t, &me) in tasks.iter().zip(&refs) {
            deadlines.push(self.fill_slot(job, &t.meta, false, me));
        }
        // One ascending-order sweep over the union of the batch's
        // shards; later batch entries observe earlier ones as ordinary
        // predecessors (the scoreboard is applied in batch order under
        // the one critical section).
        let mut preds_out: Vec<Vec<TaskRef>> = Vec::with_capacity(n);
        if tasks.iter().any(|t| !t.meta.accesses.is_empty()) {
            let entries: Vec<(TaskRef, &[Access])> = refs
                .iter()
                .zip(&tasks)
                .map(|(&me, t)| (me, t.meta.accesses.as_slice()))
                .collect();
            shared
                .tracker
                .submit_batch(job.id.key(), &entries, &mut preds_out);
        } else {
            preds_out.resize_with(n, Vec::new);
        }
        let total_edges: usize = preds_out.iter().map(|p| p.len()).sum();
        shared.stats.edges.add(total_edges as u64);
        shared.stats.spawned.add(n as u64);
        if !job.is_default() {
            job.spawned.add(n as u64);
        }
        // One fence + poison-flag load for the whole batch (every task
        // shares the job, hence the flag).
        let poison = {
            fence(Ordering::SeqCst);
            job.has_poison.load(Ordering::SeqCst)
        };
        let mut ready: Vec<ReadyTask> = Vec::new();
        let mut ids = Vec::with_capacity(n);
        for (i, (task, preds)) in tasks.into_iter().zip(preds_out).enumerate() {
            let me = refs[i];
            ids.push(me.tid);
            let body = task.body.expect("checked in spawn_many_blocking");
            if let Some(t) =
                self.wire_spawn(job, task.meta, body, false, me, deadlines[i], preds, poison)
            {
                ready.push(t);
            }
        }
        self.pool.push_affine_batch(ready);
        ids
    }

    /// [`Runtime::admit`] for `n` tasks in one reservation: every
    /// counter moves once by `n` instead of `n` times by one, and the
    /// batch is admitted or refused atomically — a partial batch never
    /// leaks reservations.
    fn admit_many(&self, job: &Arc<JobState>, n: u64) -> Result<(), AdmissionError> {
        debug_assert!(n > 0);
        let shared = &*self.shared;
        if shared.terminated.load(Ordering::SeqCst)
            || shared.lifecycle.load(Ordering::SeqCst) == LIFECYCLE_DRAINED
        {
            return Err(AdmissionError::Draining);
        }
        if job.cancelled.load(Ordering::SeqCst) {
            return Err(AdmissionError::Cancelled);
        }
        if job.qos.sheddable() {
            let over_watermark = self
                .config
                .shed_watermark
                .is_some_and(|wm| shared.admitted.load(Ordering::SeqCst) >= wm as u64);
            if over_watermark || shared.shed.as_ref().is_some_and(|ctl| ctl.should_shed()) {
                shared.stats.tasks_shed.fetch_add(n, Ordering::Relaxed);
                job.shed.fetch_add(n, Ordering::Relaxed);
                return Err(AdmissionError::Shed);
            }
        }
        let now = if job.is_default() {
            0
        } else if let Some(cap) = job.max_in_flight {
            match job
                .reserved
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    (v + n <= cap as u64).then_some(v + n)
                }) {
                Ok(prev) => {
                    job.in_flight.inc(n);
                    prev + n
                }
                Err(_) => {
                    RuntimeStats::bump(&shared.stats.admission_rejected);
                    return Err(AdmissionError::Busy);
                }
            }
        } else {
            job.in_flight.inc(n);
            0
        };
        if let Some(cap) = self.config.max_in_flight {
            if shared
                .admitted
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    (v + n <= cap as u64).then_some(v + n)
                })
                .is_err()
            {
                if !job.is_default() {
                    job.release_in_flight_many(n);
                }
                RuntimeStats::bump(&shared.stats.admission_rejected);
                return Err(AdmissionError::Busy);
            }
        } else if shared.track_admitted {
            shared.admitted.fetch_add(n, Ordering::SeqCst);
        }
        // Cancellation re-check after both reservations — same lost-
        // reservation hazard as the single-task `admit`.
        if job.cancelled.load(Ordering::SeqCst) {
            if shared.track_admitted {
                shared.admitted.fetch_sub(n, Ordering::SeqCst);
            }
            if !job.is_default() {
                job.release_in_flight_many(n);
            }
            if shared.admission_waiters.load(Ordering::SeqCst) > 0 {
                let _g = shared.admission_lock.lock();
                shared.admission_cv.notify_all();
            }
            return Err(AdmissionError::Cancelled);
        }
        if now > job.in_flight_hwm.load(Ordering::Relaxed) {
            job.in_flight_hwm.fetch_max(now, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Reserve one in-flight slot for a task of `job`, or say why not.
    /// Reservation order: job-level caps first, the global cap last,
    /// with per-job rollback when the global reservation fails — so a
    /// refused spawn leaves every counter untouched.
    fn admit(&self, job: &Arc<JobState>) -> Result<(), AdmissionError> {
        let shared = &*self.shared;
        if shared.terminated.load(Ordering::SeqCst)
            || shared.lifecycle.load(Ordering::SeqCst) == LIFECYCLE_DRAINED
        {
            return Err(AdmissionError::Draining);
        }
        if job.cancelled.load(Ordering::SeqCst) {
            return Err(AdmissionError::Cancelled);
        }
        if job.qos.sheddable() {
            if let Some(wm) = self.config.shed_watermark {
                if shared.admitted.load(Ordering::SeqCst) >= wm as u64 {
                    RuntimeStats::bump(&shared.stats.tasks_shed);
                    job.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(AdmissionError::Shed);
                }
            }
            if let Some(ctl) = &shared.shed {
                if ctl.should_shed() {
                    RuntimeStats::bump(&shared.stats.tasks_shed);
                    job.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(AdmissionError::Shed);
                }
            }
        }
        // Per-job reservation. The default job is exempt: it has no
        // handle, so nothing can join, cap or inspect it — skipping its
        // counters keeps `Runtime::task` spawns free of per-job RMWs
        // (its failure and poison bookkeeping is unaffected).
        let now = if job.is_default() {
            0
        } else if let Some(cap) = job.max_in_flight {
            // The cap is inherently one shared number: reserve against
            // the exact counter, then mirror into the striped gauge
            // joiners read.
            match job
                .reserved
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    (v < cap as u64).then_some(v + 1)
                }) {
                Ok(prev) => {
                    job.in_flight.inc(1);
                    prev + 1
                }
                Err(_) => {
                    RuntimeStats::bump(&shared.stats.admission_rejected);
                    return Err(AdmissionError::Busy);
                }
            }
        } else {
            // Uncapped: only the local stripe is touched. No exact
            // "current" value exists cheaply, so the high-water mark is
            // sampled lazily at `stats()` instead (now = 0 skips the
            // update below).
            job.in_flight.inc(1);
            0
        };
        if let Some(cap) = self.config.max_in_flight {
            if shared
                .admitted
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                    (v < cap as u64).then_some(v + 1)
                })
                .is_err()
            {
                // Roll back the per-job reservation (with the joiner
                // wakeup a settle would do — a joiner may have seen the
                // transient count).
                if !job.is_default() {
                    job.release_in_flight();
                }
                RuntimeStats::bump(&shared.stats.admission_rejected);
                return Err(AdmissionError::Busy);
            }
        } else if shared.track_admitted {
            shared.admitted.fetch_add(1, Ordering::SeqCst);
        }
        // Cancellation re-check *after* both reservations: a cancel that
        // raced in between (e.g. the deadline reaper firing while a
        // blocking spawn waited out `Busy`) would otherwise leave this
        // reservation leaked forever — the task it was reserved for is
        // never spawned, so no completion ever releases it, and the
        // job's joiners hang on a phantom in-flight count.
        if job.cancelled.load(Ordering::SeqCst) {
            if shared.track_admitted {
                shared.admitted.fetch_sub(1, Ordering::SeqCst);
            }
            if !job.is_default() {
                job.release_in_flight();
            }
            if shared.admission_waiters.load(Ordering::SeqCst) > 0 {
                let _g = shared.admission_lock.lock();
                shared.admission_cv.notify_all();
            }
            return Err(AdmissionError::Cancelled);
        }
        // Steady state the mark is already met and this is a plain load —
        // no RMW on the spawn hot path once the job has warmed up.
        if now > job.in_flight_hwm.load(Ordering::Relaxed) {
            job.in_flight_hwm.fetch_max(now, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Park a blocked spawner until a completion frees capacity. The
    /// wait is bounded: capacity freed between the failed reservation
    /// and registering as a waiter would otherwise be a lost wakeup.
    fn wait_for_capacity(&self) {
        let shared = &*self.shared;
        shared.admission_waiters.fetch_add(1, Ordering::SeqCst);
        let mut g = shared.admission_lock.lock();
        shared
            .admission_cv
            .wait_for(&mut g, Duration::from_micros(500));
        drop(g);
        shared.admission_waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// The spawn protocol proper. The caller has already reserved
    /// admission for non-exempt tasks; exempt sentinels bypass admission
    /// and job accounting entirely (their `st.job` stays `None`).
    fn spawn_scoped(
        &self,
        job: &Arc<JobState>,
        meta: TaskMeta,
        body: ExecBody,
        exempt: bool,
    ) -> TaskId {
        let shared = &*self.shared;
        // Count the task as outstanding *before* it becomes visible in the
        // dependency table: a predecessor completing concurrently could
        // otherwise release and finish it before the increment.
        shared.outstanding.inc(1);
        let tid = TaskId(shared.next_id.fetch_add(1, Ordering::Relaxed));
        let (slot_idx, gen) = shared.slab.alloc();
        let me = TaskRef {
            tid,
            slot: slot_idx,
            gen,
        };
        let deadline_ns = self.fill_slot(job, &meta, exempt, me);
        // Dependency discovery: only the shards covering the declared
        // regions are locked; access-free tasks skip the tracker whole.
        // The job id namespaces the region table, so concurrent jobs
        // touching the same datum never serialise on false edges.
        let mut preds: Vec<TaskRef> = Vec::new();
        if !meta.accesses.is_empty() {
            shared
                .tracker
                .submit(job.id.key(), me, &meta.accesses, &mut preds);
        }
        // Spawn counters must be published before the task can possibly
        // complete (i.e. before `wire_spawn` drops the submission guard):
        // a completion outrunning `spawned` would let `reap` observe
        // `spawned <= completed` with zero in-flight and settle the job
        // early.
        shared.stats.edges.add(preds.len() as u64);
        shared.stats.spawned.add(1);
        if !exempt && !job.is_default() {
            job.spawned.add(1);
        }
        let poison = !exempt && {
            fence(Ordering::SeqCst);
            job.has_poison.load(Ordering::SeqCst)
        };
        if let Some(t) = self.wire_spawn(job, meta, body, exempt, me, deadline_ns, preds, poison) {
            // Affine push: a task body spawning on a worker thread keeps
            // its ready children on that worker's own deque.
            self.pool.push_affine(t);
        }
        tid
    }

    /// Publish a freshly allocated slot's metadata before the task
    /// becomes visible in the dependency table; returns the task's
    /// scheduler deadline. The declared reads must land here *before*
    /// the spawn path's poison-flag load — that ordering (fill, fence,
    /// flag load) pairs with the poisoner side so that a racing
    /// `poison_writes` can never miss the task.
    fn fill_slot(&self, job: &Arc<JobState>, meta: &TaskMeta, exempt: bool, me: TaskRef) -> u64 {
        let shared = &*self.shared;
        let slot = shared.slab.slot(me.slot);
        // Only guaranteed jobs' tasks carry an EDF deadline into the
        // scheduler: a best-effort job past its deadline is *reaped*
        // (cancelled), not raced for.
        let deadline_ns = if exempt || job.qos.sheddable() {
            crate::scheduler::NO_DEADLINE
        } else {
            job.deadline_at.map_or(crate::scheduler::NO_DEADLINE, |d| {
                d.saturating_duration_since(shared.epoch).as_nanos() as u64
            })
        };
        let mut st = slot.state.lock();
        st.tid = me.tid;
        st.cost = meta.cost;
        st.priority = meta.priority;
        st.idempotent = meta.idempotent;
        st.exempt = exempt;
        st.job = (!exempt).then(|| Arc::clone(job));
        st.deadline_ns = deadline_ns;
        st.home = self.home_cluster_for(meta);
        st.label.push_str(&meta.label);
        st.reads.extend(
            meta.accesses
                .iter()
                .filter(|a| a.mode.reads())
                .map(|a| a.region),
        );
        st.writes.extend(
            meta.accesses
                .iter()
                .filter(|a| a.mode.writes())
                .map(|a| a.region),
        );
        deadline_ns
    }

    /// Locality-aware placement: route a task to the cluster whose
    /// declared data footprint it touches. The first written region (or
    /// the first read, for read-only tasks) anchors the task; if SPM
    /// ranges were declared via [`Runtime::declare_spm_ranges`], the
    /// range containing the region's start address picks the cluster
    /// (range index modulo cluster count — one scratchpad per tile
    /// group, as in the paper's runtime-managed SPM hierarchy);
    /// otherwise the region id hashes block-cyclically. Flat topologies
    /// skip all of it: every task is homeless and lands round-robin.
    fn home_cluster_for(&self, meta: &TaskMeta) -> u32 {
        let shared = &*self.shared;
        let k = shared.topology.clusters;
        if k <= 1 {
            return NO_HOME;
        }
        let anchor = meta
            .accesses
            .iter()
            .find(|a| a.mode.writes())
            .or_else(|| meta.accesses.first());
        let Some(a) = anchor else {
            return NO_HOME;
        };
        if shared.spm_declared.load(Ordering::Acquire) {
            let map = shared.spm_map.lock();
            if let Some(idx) = map.iter().position(|&(base, bytes)| {
                a.region.range.start >= base && a.region.range.start < base.saturating_add(bytes)
            }) {
                return (idx % k) as u32;
            }
        }
        shared.topology.home_cluster(a.region.id.0) as u32
    }

    /// The tail of the spawn protocol, shared by the single and batched
    /// paths: criticality, poison handling, body instrumentation, edge
    /// wiring and the submission-guard drop. The caller has already made
    /// the task outstanding, filled its slot, run dependency discovery
    /// and published the spawn counters; `poison` says whether the job's
    /// poison flag was observed set (after the caller's fence). Returns
    /// the task when it is ready to dispatch — no live predecessor
    /// registered, or every wired predecessor settled before the guard
    /// dropped — and the caller pushes it (batched callers push the
    /// whole batch under a single wake).
    #[allow(clippy::too_many_arguments)]
    fn wire_spawn(
        &self,
        job: &Arc<JobState>,
        meta: TaskMeta,
        body: ExecBody,
        exempt: bool,
        me: TaskRef,
        deadline_ns: u64,
        preds: Vec<TaskRef>,
        poison: bool,
    ) -> Option<ReadyTask> {
        let shared = &*self.shared;
        let TaskRef {
            tid,
            slot: slot_idx,
            gen,
        } = me;
        let slot = shared.slab.slot(slot_idx);
        // Best-effort jobs never claim critical status (or the fast
        // workers that come with it under CriticalityAware).
        let critical = if job.qos.sheddable() {
            false
        } else {
            match meta.criticality {
                Criticality::Critical => true,
                Criticality::NonCritical => false,
                Criticality::Auto => shared.submit_criticality(&me, meta.cost.max(1), &preds),
            }
        };
        let home;
        {
            let mut st = slot.state.lock();
            st.critical = critical;
            home = st.home;
            st.preds.extend(preds.iter().map(|p| (p.slot, p.gen)));
        }
        if let Some(rec) = &shared.recorded {
            rec.lock()
                .push((meta.clone(), preds.iter().map(|p| p.tid).collect()));
        }
        // A task reading an already-poisoned range (in its own job's
        // fault domain) is doomed at spawn; a clean task that fully
        // overwrites a poisoned range (`out` access: no read of the old
        // contents) cleanses it.
        if poison {
            let mut poisoned = job.poisoned.lock();
            let hit = meta
                .accesses
                .iter()
                .filter(|a| a.mode.reads())
                .find_map(|a| {
                    poisoned
                        .iter()
                        .find(|p| p.region.overlaps(&a.region))
                        .map(|p| (p.source, p.source_label.clone()))
                });
            match hit {
                Some(pb) => {
                    drop(poisoned);
                    slot.state.lock().poisoned_by = Some(pb);
                }
                None => {
                    for a in &meta.accesses {
                        if a.mode == AccessMode::Write {
                            cleanse(&mut poisoned, &a.region);
                        }
                    }
                }
            }
        }
        let body = instrument(
            body,
            tid,
            slot_idx,
            gen,
            critical,
            exempt,
            shared.capture.is_some(),
            Arc::downgrade(&self.shared),
            Arc::clone(&job.session),
            job.fault_plan.clone(),
            if exempt {
                None
            } else {
                shared.telemetry.clone()
            },
            if exempt { None } else { job.telemetry.clone() },
        );
        // Job-layer spawns sample their admission→first-dispatch delay
        // into the adaptive shed controller and the job's own metrics.
        // Default-job spawns skip the probe: the single-tenant hot path
        // pays nothing for the serving layer.
        let body = if !exempt && !job.is_default() {
            with_dispatch_probe(body, Arc::clone(job), Arc::downgrade(&self.shared))
        } else {
            body
        };
        // Park a duplicate of the fully wrapped body for straggler
        // hedging. Only retryable (idempotent) bodies can duplicate;
        // the probe's one-shot guard is shared with the duplicate, so a
        // hedged re-dispatch never records a second sample.
        if self.config.soft_timeout.is_some() && !exempt {
            if let Some(dup) = body.duplicate() {
                slot.state.lock().hedge_body = Some(dup);
            }
        }
        // Wire edges. Our own `pending` holds the submission guard from
        // `alloc`, so a predecessor completing mid-wire can bring it down
        // to the guard but never to zero — which is also why each edge
        // must be counted *before* it becomes visible in the
        // predecessor's successor list: the predecessor may settle and
        // decrement the instant the lock drops.
        let mut live_preds = 0u32;
        for p in &preds {
            let pslot = shared.slab.slot(p.slot);
            slot.pending.fetch_add(1, Ordering::AcqRel);
            let mut pst = pslot.state.lock();
            if pslot.gen.load(Ordering::Acquire) == p.gen && !pst.completed {
                pst.succs.push(slot_idx);
                live_preds += 1;
            } else {
                // Generation moved on or `completed` set: that
                // predecessor already settled and owes us no release.
                drop(pst);
                slot.pending.fetch_sub(1, Ordering::AcqRel);
            }
        }
        if critical {
            RuntimeStats::bump(&shared.stats.critical_tasks);
        }
        if let Some(t) = &shared.tracer {
            // arg = predecessor count << 1 | ready-at-spawn (ready tasks
            // get no separate Ready event — spawn implies it).
            let ready = (live_preds == 0) as u64;
            t.emit(
                TraceEventKind::Spawn,
                tid,
                slot_idx,
                gen,
                ((preds.len() as u64) << 1) | ready,
            );
        }
        if live_preds == 0 {
            // No live predecessor registered: nobody else can release us,
            // so the body never needs to be parked in the slot.
            shared.stats.ready_at_spawn.add(1);
            return Some(ReadyTask {
                id: tid,
                slot: slot_idx,
                gen,
                priority: meta.priority,
                critical,
                deadline_ns,
                home,
                seq: 0,
                body,
            });
        }
        slot.state.lock().body = Some(body);
        // Drop the submission guard; if every wired predecessor beat
        // us to completion, the release falls to us.
        if slot.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let body = slot
                .state
                .lock()
                .body
                .take()
                .expect("spawn-released task must still hold its body");
            if let Some(t) = &shared.tracer {
                t.emit(TraceEventKind::Ready, tid, slot_idx, gen, 0);
            }
            return Some(ReadyTask {
                id: tid,
                slot: slot_idx,
                gen,
                priority: meta.priority,
                critical,
                deadline_ns,
                home,
                seq: 0,
                body,
            });
        }
        None
    }

    /// OmpSs `taskwait on(...)`: block until every task spawned so far
    /// that touches `handle`'s region has completed — without waiting for
    /// unrelated tasks. Implemented the way Nanos does: submit a sentinel
    /// with an `inout` dependence on the region and wait for it alone.
    pub fn taskwait_on<T: ?Sized>(&self, handle: &DataHandle<T>) {
        self.taskwait_on_region(handle.region());
    }

    /// Like [`Runtime::taskwait_on`] for an explicit region (e.g. one
    /// block of a larger datum). Returns even when the region was
    /// poisoned by a failure — the sentinel is exempt from poison (and
    /// from fault injection), so the waiter cannot hang; inspect
    /// [`Runtime::try_taskwait`] or [`Runtime::poisoned_regions`] to
    /// learn about the failure.
    pub fn taskwait_on_region(&self, region: Region) {
        let job = Arc::clone(&self.shared.default_job);
        self.taskwait_on_region_for(&job, region);
    }

    /// `taskwait on(region)` scoped to one job's dependency namespace:
    /// the sentinel chains on `job`'s accesses to the region only.
    fn taskwait_on_region_for(&self, job: &Arc<JobState>, region: Region) {
        if self.shared.terminated.load(Ordering::SeqCst) {
            // Forced drain: the workers are gone (or going); a sentinel
            // would never run and the wait below would hang.
            return;
        }
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let signal = Arc::clone(&done);
        let mut meta = TaskMeta::new("taskwait-on");
        meta.accesses.push(Access {
            region,
            mode: AccessMode::ReadWrite,
        });
        self.spawn_scoped(
            job,
            meta,
            ExecBody::once(move || {
                let (lock, cv) = &*signal;
                *lock.lock() = true;
                cv.notify_all();
            }),
            true,
        );
        let (lock, cv) = &*done;
        let mut finished = lock.lock();
        while !*finished {
            // Bounded waits so a forced drain (which cannot reach this
            // private condvar) still unblocks the caller.
            cv.wait_for(&mut finished, Duration::from_millis(5));
            if self.shared.terminated.load(Ordering::SeqCst) {
                break;
            }
        }
    }

    /// Block until every task spawned so far has completed. Panics with
    /// the full [`FaultReport`] if any task failed. Must not be called
    /// from inside a task body.
    pub fn taskwait(&self) {
        if let Err(report) = self.try_taskwait() {
            panic!("{report}");
        }
    }

    /// Like [`Runtime::taskwait`], but reports failures as a structured
    /// [`FaultReport`] (every failed task with label, attempt count and
    /// cause chain, plus a snapshot of every region range still
    /// poisoned) instead of panicking. The report covers the *default
    /// job's* fault domain; submitted jobs report through
    /// `JobHandle::try_join`.
    pub fn try_taskwait(&self) -> Result<(), FaultReport> {
        {
            let mut g = self.shared.wait.lock();
            while self.shared.outstanding.read() > 0
                && !self.shared.terminated.load(Ordering::SeqCst)
            {
                // Bounded: completions never notify (striped counter).
                self.shared.wait_cv.wait_for(&mut g, QUIESCE_POLL);
            }
        }
        self.shared.default_job.take_report()
    }

    /// Region ranges currently poisoned by failed writers (in the
    /// default job's fault domain; see `JobHandle::poisoned_regions` for
    /// a submitted job's).
    pub fn poisoned_regions(&self) -> Vec<Region> {
        self.shared
            .default_job
            .poisoned
            .lock()
            .iter()
            .map(|p| p.region)
            .collect()
    }

    /// Poison `region` from *outside* the task graph — the machine-check
    /// entry point: hardware (see `raa-core`'s `MceRouter`) detected an
    /// uncorrectable error in the memory backing this region. Pending
    /// readers fail fast with a typed [`TaskError::Poisoned`] whose
    /// source is the synthetic hardware task id [`Runtime::HW_SOURCE`];
    /// a later task that fully overwrites the range (`Write` access)
    /// cleanses it — exactly how FEIR/AFEIR recovery tasks repair data
    /// lost to a DUE.
    ///
    /// Hardware faults are physical, not per-tenant: the region is
    /// poisoned in *every* live job's fault domain.
    pub fn poison_region(&self, region: Region, label: impl Into<String>) {
        let label = label.into();
        if let Some(fr) = &self.shared.flight {
            fr.request_dump(FlightReason::HardwareFault {
                region: label.clone(),
            });
        }
        let jobs = self.shared.jobs.lock().live();
        for job in &jobs {
            self.shared
                .poison_writes(job, Self::HW_SOURCE, &label, &[region]);
        }
    }

    /// Synthetic source id for failures originating in hardware rather
    /// than in a task (see [`Runtime::poison_region`]).
    pub const HW_SOURCE: TaskId = TaskId(u32::MAX);

    /// Forget all poison in every job: the caller asserts the data has
    /// been repaired out-of-band (e.g. recomputed from a checkpoint).
    /// Pending tasks that were already marked as victims are unmarked
    /// and will run.
    pub fn clear_poison(&self) {
        let jobs = self.shared.jobs.lock().live();
        for job in &jobs {
            job.poisoned.lock().clear();
            job.has_poison.store(false, Ordering::SeqCst);
        }
        self.shared.slab.for_each_live(|_, slot| {
            slot.state.lock().poisoned_by = None;
        });
        self.shared.has_poison.store(false, Ordering::SeqCst);
    }

    /// Targeted variant of [`Runtime::clear_poison`]: forget poison for
    /// one region range only (in every job), unmarking pending victims
    /// whose declared reads no longer overlap any remaining poison in
    /// their job. Partial overlaps leave the uncovered remainder
    /// poisoned.
    pub fn clear_poison_region(&self, region: Region) {
        let jobs = self.shared.jobs.lock().live();
        for job in &jobs {
            self.shared.clear_job_poison_region(job, &region);
        }
    }

    /// Runtime counters snapshot, including the pool's worker fault and
    /// park/wake counters and the scheduler's steal/overflow counters.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.shared.stats.snapshot();
        let pf = self.pool.fault_stats();
        snap.worker_deaths = pf.worker_deaths;
        snap.worker_respawns = pf.worker_respawns;
        snap.worker_stalls = pf.worker_stalls;
        let (steals_ok, steals_empty, injector_overflow) = self.queues.contention_counters();
        snap.steals_ok = steals_ok;
        snap.steals_empty = steals_empty;
        snap.injector_overflow = injector_overflow;
        let (parks, wakes) = self.pool.park_stats();
        snap.parks = parks;
        snap.wakes = wakes;
        snap
    }

    /// Where the scaling bottlenecks are: per-victim steal hit rates,
    /// the injector's share of ready-task traffic, and the slab's
    /// remote-free ratio. Unlike [`Runtime::stats`] this allocates (the
    /// per-victim table), so it is a diagnostics call, not a hot-path
    /// one.
    pub fn contention_report(&self) -> ContentionReport {
        let (per_victim, injector_pushes, injector_overflow, dispatches) =
            self.pool.contention_data();
        let (slab_local_frees, slab_remote_frees) = self.shared.slab.free_stats();
        ContentionReport {
            per_victim,
            per_cluster: self.pool.cluster_data(),
            injector_pushes,
            injector_overflow,
            dispatches,
            slab_local_frees,
            slab_remote_frees,
        }
    }

    /// Whether event tracing was enabled at construction.
    pub fn tracing_enabled(&self) -> bool {
        self.shared.tracer.is_some()
    }

    /// Whether the telemetry plane (and with it the sampler and flight
    /// recorder) was enabled at construction.
    pub fn telemetry_enabled(&self) -> bool {
        self.shared.telemetry.is_some()
    }

    /// Aggregate the telemetry plane on demand: merge every worker
    /// cell's histograms with the runtime's always-on counters and the
    /// per-tenant breakdowns. `None` when telemetry is off. Safe to
    /// call mid-run — recording is lock-free, so a snapshot is a
    /// consistent-enough view, not a barrier.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.shared.telemetry.as_ref()?;
        Some(assemble_snapshot(
            &self.shared,
            &self.queues,
            &self.pool.stats_handle(),
            self.config.workers,
        ))
    }

    /// Drain the sampler's accumulated per-tick deltas (at most the
    /// last 128 ticks; older ones fell off the front). Empty when
    /// telemetry is off.
    pub fn telemetry_deltas(&self) -> Vec<TelemetryDelta> {
        self.sampler
            .as_ref()
            .map(|s| s.take_deltas())
            .unwrap_or_default()
    }

    /// Anomalies the sampler's trigger rules have fired so far (the
    /// count survives [`Runtime::telemetry_deltas`] draining).
    pub fn telemetry_anomalies(&self) -> u64 {
        self.sampler.as_ref().map_or(0, |s| s.anomaly_count())
    }

    /// Materialise every pending flight-recorder dump into a
    /// post-mortem [`FlightBundle`]: the ring contents as a Chrome
    /// trace, a telemetry snapshot rendered to JSON, and the contention
    /// report — captured now, which is as close to the fault as the
    /// caller asked for. Empty when telemetry is off or nothing
    /// triggered.
    pub fn take_flight_bundles(&self) -> Vec<FlightBundle> {
        let Some(fr) = &self.shared.flight else {
            return Vec::new();
        };
        let dumps = fr.take_dumps();
        if dumps.is_empty() {
            return Vec::new();
        }
        let snapshot = self
            .telemetry_snapshot()
            .expect("flight recorder implies the telemetry plane");
        let snapshot_json = crate::export::telemetry_json(&snapshot);
        let c = self.contention_report();
        let contention = format!(
            "injector share {:.1}% ({} pushes, {} overflow) of {} dispatches; \
             slab remote-free {:.1}% ({} local / {} remote); steal hit rates {}",
            c.injector_share() * 100.0,
            c.injector_pushes,
            c.injector_overflow,
            c.dispatches,
            c.remote_free_ratio() * 100.0,
            c.slab_local_frees,
            c.slab_remote_frees,
            c.per_victim
                .iter()
                .enumerate()
                .map(|(w, v)| format!("w{w}:{:.0}%", v.hit_rate() * 100.0))
                .collect::<Vec<_>>()
                .join(" "),
        );
        dumps
            .into_iter()
            .map(|d| {
                let events = d.len();
                let trace = Trace {
                    workers: d.tracks.len(),
                    dropped: vec![0; d.tracks.len()],
                    tracks: d.tracks,
                };
                FlightBundle {
                    reason: d.reason,
                    at_ns: d.at_ns,
                    events,
                    snapshot_json: snapshot_json.clone(),
                    trace_json: crate::export::chrome_trace_json(&trace, None),
                    contention: contention.clone(),
                }
            })
            .collect()
    }

    /// Drain everything the tracer recorded since the last drain (or
    /// since construction). `None` when tracing is off. Usually called
    /// after a [`Runtime::taskwait`]; draining mid-run is safe but an
    /// event stream cut mid-task will contain unmatched starts.
    pub fn drain_trace(&self) -> Option<Trace> {
        self.shared.tracer.as_ref().map(|t| t.drain())
    }

    /// Tasks executed per worker (load-balance diagnostics).
    pub fn per_worker_executed(&self) -> Vec<u64> {
        self.pool.per_worker_executed()
    }

    /// The recorded TDG, when [`RuntimeConfig::record_graph`] was set.
    /// Reflects every task spawned so far.
    pub fn graph(&self) -> Option<TaskGraph> {
        self.shared.recorded.as_ref().map(|rec| {
            let rec = rec.lock();
            let mut g = TaskGraph::new();
            for (meta, preds) in rec.iter() {
                g.add_task(meta.clone(), preds);
            }
            g
        })
    }

    /// The recorded [`TaskProgram`], when
    /// [`RuntimeConfig::record_program`] was set: the TDG of every task
    /// spawned so far, the measured duration of every body that ran to
    /// success, and the classified reference stream of every body that
    /// emitted one (via [`crate::program::emit`]). Usually called after
    /// a [`Runtime::taskwait`].
    pub fn program(&self) -> Option<TaskProgram> {
        let cap = self.shared.capture.as_ref()?;
        let graph = self
            .graph()
            .expect("record_program implies graph recording");
        let mut prog = TaskProgram::from_graph(graph);
        for &(tid, ns) in cap.durations.lock().iter() {
            prog.set_measured(tid, ns);
        }
        for (tid, events) in cap.streams.lock().iter() {
            prog.set_stream(*tid, events.clone());
        }
        prog.set_spm_ranges(cap.spm_ranges.lock().clone());
        Some(prog)
    }

    /// Declare the SPM-mapped `(base, bytes)` ranges of the program's
    /// data layout, to be carried by the recorded [`TaskProgram`] (the
    /// machine-replay substrate needs them to route strided references).
    /// With a clustered [`Topology`] the ranges also drive locality-aware
    /// placement: tasks spawned after this call are homed on the cluster
    /// owning the SPM range their anchor region falls in (range index
    /// modulo cluster count).
    pub fn declare_spm_ranges(&self, ranges: &[(u64, u64)]) {
        if let Some(cap) = &self.shared.capture {
            let mut r = cap.spm_ranges.lock();
            r.clear();
            r.extend_from_slice(ranges);
        }
        {
            let mut m = self.shared.spm_map.lock();
            m.clear();
            m.extend_from_slice(ranges);
        }
        self.shared
            .spm_declared
            .store(!ranges.is_empty(), Ordering::Release);
    }

    // ----------------------------------------------------- job layer

    /// Open a new job: an isolated fault domain with its own retry
    /// policy, fault plan, observer session, failure list and poison
    /// set. Refused once the runtime is draining, or at the
    /// [`RuntimeConfig::max_jobs`] cap.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle<'_>, AdmissionError> {
        let shared = &*self.shared;
        if shared.lifecycle.load(Ordering::SeqCst) != LIFECYCLE_RUNNING {
            return Err(AdmissionError::Draining);
        }
        let deadline_at = spec.deadline.map(|d| Instant::now() + d);
        let job = {
            let mut jobs = shared.jobs.lock();
            if let Some(cap) = self.config.max_jobs {
                if jobs.submitted_count() >= cap {
                    RuntimeStats::bump(&shared.stats.admission_rejected);
                    return Err(AdmissionError::Busy);
                }
            }
            let session = Arc::new(TraceSession::with_flight(
                shared.tracer.clone(),
                spec.observer
                    .clone()
                    .or_else(|| self.config.observer.clone()),
                shared.flight.clone(),
            ));
            let retry = spec.retry.unwrap_or(self.config.retry);
            let plan = spec
                .fault_plan
                .clone()
                .or_else(|| self.config.fault_plan.clone());
            // Per-tenant histograms exist only while the plane is on:
            // exact per-job breakdowns, zero cost otherwise.
            let telemetry = shared
                .telemetry
                .as_ref()
                .map(|_| Arc::new(crate::telemetry::JobTelemetry::default()));
            jobs.insert(|id| {
                Arc::new(JobState::new(
                    id,
                    spec.label.clone(),
                    spec.qos,
                    retry,
                    plan,
                    session,
                    spec.max_in_flight,
                    deadline_at,
                    spec.cost_hint.unwrap_or(0),
                    telemetry,
                ))
            })
        };
        // Deadlined jobs register with the reaper. Guaranteed jobs are
        // only *marked* at expiry (and their tasks ride the EDF lane);
        // best-effort jobs are cancelled outright (see `Shared::reap`).
        if let Some(at) = deadline_at {
            self.ensure_reaper();
            shared.reaper.lock().push(ReapAt {
                at,
                job: Arc::downgrade(&job),
            });
            shared.reaper_cv.notify_all();
        }
        RuntimeStats::bump(&shared.stats.jobs_submitted);
        Ok(JobHandle { rt: self, job })
    }

    /// Wait until `job` has no in-flight tasks (or the runtime was
    /// force-terminated). Returns false on deadline expiry.
    fn wait_job(&self, job: &JobState, deadline: Option<Instant>) -> bool {
        let mut g = job.wait.lock();
        while job.in_flight() > 0 && !self.shared.terminated.load(Ordering::SeqCst) {
            // Bounded poll: uncapped jobs' completions touch only a
            // striped line and never notify (capped jobs still notify on
            // the exact reservation counter's 1→0 edge, which just makes
            // a wakeup arrive early).
            let poll = Instant::now() + QUIESCE_POLL;
            match deadline {
                Some(d) => {
                    if Instant::now() >= d {
                        return false;
                    }
                    job.wait_cv.wait_until(&mut g, d.min(poll));
                }
                None => {
                    job.wait_cv.wait_until(&mut g, poll);
                }
            }
        }
        true
    }

    /// Wait for global quiescence until `deadline`; false on expiry.
    fn wait_outstanding_until(&self, deadline: Instant) -> bool {
        let shared = &*self.shared;
        let mut g = shared.wait.lock();
        while shared.outstanding.read() > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            // Bounded: completions never notify (striped counter).
            shared
                .wait_cv
                .wait_until(&mut g, deadline.min(now + QUIESCE_POLL));
        }
        true
    }

    /// Wind the runtime down within `timeout`, in three phases:
    ///
    /// 1. **Graceful** — stop admitting new jobs (existing jobs may keep
    ///    spawning) and give in-flight work ¾ of the budget to finish.
    /// 2. **Cancel** — cancel every live job: queued tasks flow through
    ///    the workers as recorded skips (releasing their successors), so
    ///    quiescence converges without queue surgery.
    /// 3. **Forced** — at the deadline, mark the runtime terminated,
    ///    request pool shutdown without joining (a worker wedged in a
    ///    long body cannot hold `drain` past its deadline; `Drop` still
    ///    joins) and release every waiter.
    ///
    /// After a drain the runtime admits nothing; it exists to be
    /// dropped. Safe to call with an active fault plan killing workers:
    /// kills are ignored once shutdown has begun (see
    /// `pool::injected_death`) and the watchdog never respawns past it.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        let start = Instant::now();
        let shared = &*self.shared;
        // First drainer wins the transition; latecomers just wait again.
        let _ = shared.lifecycle.compare_exchange(
            LIFECYCLE_RUNNING,
            LIFECYCLE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        let deadline = start + timeout;
        let grace = start + timeout.mul_f64(0.75);
        let mut quiesced = self.wait_outstanding_until(grace);
        let mut cancelled_jobs = 0usize;
        if !quiesced {
            let jobs = shared.jobs.lock().live();
            for job in &jobs {
                if job.cancel() {
                    cancelled_jobs += 1;
                    RuntimeStats::bump(&shared.stats.jobs_cancelled);
                }
            }
            shared.any_cancelled.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            self.pool.wake_all();
            {
                let _g = shared.admission_lock.lock();
                shared.admission_cv.notify_all();
            }
            quiesced = self.wait_outstanding_until(deadline);
        }
        let forced = !quiesced;
        if forced {
            if let Some(fr) = &shared.flight {
                fr.request_dump(FlightReason::DrainTimeout);
            }
            shared.terminated.store(true, Ordering::SeqCst);
            self.pool.request_shutdown();
            {
                let _g = shared.wait.lock();
                shared.wait_cv.notify_all();
            }
            for job in shared.jobs.lock().live() {
                let _g = job.wait.lock();
                job.wait_cv.notify_all();
            }
            {
                let _g = shared.admission_lock.lock();
                shared.admission_cv.notify_all();
            }
        }
        shared.lifecycle.store(LIFECYCLE_DRAINED, Ordering::SeqCst);
        DrainReport {
            timed_out: !quiesced,
            forced,
            cancelled_jobs,
            outstanding_at_exit: shared.outstanding.read(),
            elapsed: start.elapsed(),
        }
    }

    /// True once [`Runtime::drain`] has begun (new jobs are refused).
    pub fn is_draining(&self) -> bool {
        self.shared.lifecycle.load(Ordering::SeqCst) != LIFECYCLE_RUNNING
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Wait for in-flight work without propagating panics (drop must
        // not panic), then the pool's own Drop joins the workers. A
        // force-terminated runtime skips the wait: its queued tasks are
        // dropped with the queues.
        {
            let mut g = self.shared.wait.lock();
            while self.shared.outstanding.read() > 0
                && !self.shared.terminated.load(Ordering::SeqCst)
            {
                // Bounded: completions never notify (striped counter).
                self.shared.wait_cv.wait_for(&mut g, QUIESCE_POLL);
            }
        }
        // Stop and join the deadline reaper (if it ever spawned): the
        // flag must be published under the reaper lock so a reaper
        // mid-wait cannot miss the notify.
        self.shared.reaper_stop.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.reaper.lock();
            self.shared.reaper_cv.notify_all();
        }
        if let Some(h) = self.reaper_thread.lock().take() {
            let _ = h.join();
        }
        // Same pattern for the telemetry sampler: publish stop under
        // its lock so a sampler mid-wait cannot miss the notify.
        if let Some(s) = &self.sampler {
            s.stop.store(true, Ordering::SeqCst);
            if let Ok(_g) = s.lock.lock() {
                s.cv.notify_all();
            }
        }
        if let Some(h) = self.sampler_thread.lock().take() {
            let _ = h.join();
        }
    }
}

/// Fluent task construction: declare label, dependencies, cost hints and
/// the body, then [`TaskBuilder::spawn`].
pub struct TaskBuilder<'rt> {
    rt: &'rt Runtime,
    job: &'rt Arc<JobState>,
    meta: TaskMeta,
    body: Option<ExecBody>,
}

impl<'rt> TaskBuilder<'rt> {
    /// Declare a read (`in`) dependency on a whole datum.
    pub fn reads<T: ?Sized>(mut self, h: &DataHandle<T>) -> Self {
        self.meta.accesses.push(Access {
            region: h.region(),
            mode: AccessMode::Read,
        });
        self
    }

    /// Declare a write (`out`) dependency on a whole datum.
    pub fn writes<T: ?Sized>(mut self, h: &DataHandle<T>) -> Self {
        self.meta.accesses.push(Access {
            region: h.region(),
            mode: AccessMode::Write,
        });
        self
    }

    /// Declare an `inout` dependency on a whole datum.
    pub fn updates<T: ?Sized>(mut self, h: &DataHandle<T>) -> Self {
        self.meta.accesses.push(Access {
            region: h.region(),
            mode: AccessMode::ReadWrite,
        });
        self
    }

    /// Declare a dependency on an explicit region (e.g. a block).
    pub fn region(mut self, region: Region, mode: AccessMode) -> Self {
        self.meta.accesses.push(Access { region, mode });
        self
    }

    /// Cost hint in abstract work units (used by criticality analysis).
    pub fn cost(mut self, cost: u64) -> Self {
        self.meta.cost = cost;
        self
    }

    /// Scheduling priority (higher runs earlier among ready tasks).
    pub fn priority(mut self, priority: i32) -> Self {
        self.meta.priority = priority;
        self
    }

    /// Explicit criticality annotation (§3.1: "task criticality can be
    /// simply annotated by the programmer").
    pub fn criticality(mut self, c: Criticality) -> Self {
        self.meta.criticality = c;
        self
    }

    /// The task body (one-shot; never re-executed).
    pub fn body(mut self, f: impl FnOnce() + Send + 'static) -> Self {
        self.body = Some(ExecBody::once(f));
        self
    }

    /// An idempotent task body: the programmer promises that re-running
    /// it is safe, which lets the [`RetryPolicy`] re-execute the task
    /// after a panic instead of failing it.
    pub fn idempotent(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.meta.idempotent = true;
        self.body = Some(ExecBody::retryable(f));
        self
    }

    /// Submit the task. Panics if no body was provided. Blocks while the
    /// job (or runtime) is at its in-flight cap; if the job was
    /// cancelled, the runtime is draining, or the task was shed, the
    /// task is silently discarded (the id then refers to a task that
    /// never runs). Use [`TaskBuilder::try_spawn`] to observe refusals.
    pub fn spawn(self) -> TaskId {
        let body = self.body.expect("task needs a body before spawn()");
        self.rt.spawn_blocking(self.job, self.meta, body)
    }

    /// Submit the task without blocking: admission refusals (including
    /// `Busy` at an in-flight cap) surface as errors instead of waiting
    /// or silently discarding. Panics if no body was provided.
    pub fn try_spawn(self) -> Result<TaskId, AdmissionError> {
        let body = self.body.expect("task needs a body before try_spawn()");
        self.rt.spawn_job(self.job, self.meta, body, false)
    }
}

/// One entry of a [`TaskScope::spawn_many`] batch: the same declaration
/// surface as [`TaskBuilder`], detached from a runtime so whole
/// subgraphs can be described up front and submitted in one pass.
pub struct BatchTask {
    meta: TaskMeta,
    body: Option<ExecBody>,
}

impl BatchTask {
    /// Begin describing a batch entry.
    pub fn new(label: impl Into<String>) -> Self {
        BatchTask {
            meta: TaskMeta::new(label),
            body: None,
        }
    }

    /// Declare a read (`in`) dependency on a whole datum.
    pub fn reads<T: ?Sized>(mut self, h: &DataHandle<T>) -> Self {
        self.meta.accesses.push(Access {
            region: h.region(),
            mode: AccessMode::Read,
        });
        self
    }

    /// Declare a write (`out`) dependency on a whole datum.
    pub fn writes<T: ?Sized>(mut self, h: &DataHandle<T>) -> Self {
        self.meta.accesses.push(Access {
            region: h.region(),
            mode: AccessMode::Write,
        });
        self
    }

    /// Declare an `inout` dependency on a whole datum.
    pub fn updates<T: ?Sized>(mut self, h: &DataHandle<T>) -> Self {
        self.meta.accesses.push(Access {
            region: h.region(),
            mode: AccessMode::ReadWrite,
        });
        self
    }

    /// Declare a dependency on an explicit region (e.g. a block).
    pub fn region(mut self, region: Region, mode: AccessMode) -> Self {
        self.meta.accesses.push(Access { region, mode });
        self
    }

    /// Cost hint in abstract work units (used by criticality analysis).
    pub fn cost(mut self, cost: u64) -> Self {
        self.meta.cost = cost;
        self
    }

    /// Scheduling priority (higher runs earlier among ready tasks).
    pub fn priority(mut self, priority: i32) -> Self {
        self.meta.priority = priority;
        self
    }

    /// Explicit criticality annotation.
    pub fn criticality(mut self, c: Criticality) -> Self {
        self.meta.criticality = c;
        self
    }

    /// The task body (one-shot; never re-executed).
    pub fn body(mut self, f: impl FnOnce() + Send + 'static) -> Self {
        self.body = Some(ExecBody::once(f));
        self
    }

    /// An idempotent task body (safe for the retry policy to re-run).
    pub fn idempotent(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.meta.idempotent = true;
        self.body = Some(ExecBody::retryable(f));
        self
    }
}

/// A live job: an isolated fault domain inside a shared [`Runtime`].
///
/// Tasks spawned through the handle are tagged with the job's
/// generation-counted [`JobId`]; their dependency tracking, retry
/// budget, failure reports, poisoned regions and observer events are
/// all scoped to this job and never leak into (or out of) other jobs.
///
/// Dropping the handle does not cancel the job; in-flight tasks finish
/// and the job's slot is reclaimed once they have.
pub struct JobHandle<'rt> {
    rt: &'rt Runtime,
    job: Arc<JobState>,
}

impl<'rt> JobHandle<'rt> {
    /// The job's generation-counted id.
    pub fn id(&self) -> JobId {
        self.job.id
    }

    /// The label given at submission.
    pub fn label(&self) -> &str {
        &self.job.label
    }

    /// The job's quality-of-service class.
    pub fn qos(&self) -> QosClass {
        self.job.qos
    }

    /// Begin building a task inside this job.
    pub fn task(&self, label: impl Into<String>) -> TaskBuilder<'_> {
        TaskBuilder {
            rt: self.rt,
            job: &self.job,
            meta: TaskMeta::new(label),
            body: None,
        }
    }

    /// Register a datum for dependency tracking (regions are global, so
    /// jobs may share handles; *dependencies* still never cross jobs).
    pub fn register<T>(&self, name: impl Into<String>, value: T) -> DataHandle<T> {
        DataHandle::new(name, value)
    }

    /// Cancel the job: new spawns are refused and queued tasks are
    /// skipped (recorded as [`TaskError::Cancelled`], successors
    /// released so the graph still quiesces). Tasks already executing
    /// run to completion. Returns true on the first call.
    pub fn cancel(&self) -> bool {
        let first = self.job.cancel();
        if first {
            let shared = &*self.rt.shared;
            RuntimeStats::bump(&shared.stats.jobs_cancelled);
            shared.any_cancelled.store(true, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let _g = shared.admission_lock.lock();
            shared.admission_cv.notify_all();
        }
        first
    }

    /// Wait for every task in this job to settle, then report: `Ok` if
    /// all succeeded, otherwise the job's [`FaultReport`] (failures and
    /// still-poisoned regions). Resets the failure list.
    pub fn try_join(&self) -> Result<(), FaultReport> {
        self.rt.wait_job(&self.job, None);
        self.job.take_report()
    }

    /// [`JobHandle::try_join`] with a deadline: `None` if the job did
    /// not settle within `timeout` (no state is consumed; join again).
    pub fn join_timeout(&self, timeout: Duration) -> Option<Result<(), FaultReport>> {
        // One absolute deadline computed up front: every re-wait after a
        // spurious (or too-early) wakeup targets the *remainder* of the
        // timeout, never a fresh full one — `join_timeout(t)` returns
        // within ~t even under a notify storm.
        let deadline = Instant::now() + timeout;
        if !self.rt.wait_job(&self.job, Some(deadline)) {
            return None;
        }
        Some(self.job.take_report())
    }

    /// Wait for the job and panic on failure (test/example convenience).
    pub fn join(&self) {
        if let Err(report) = self.try_join() {
            panic!("job '{}' failed:\n{report}", self.job.label);
        }
    }

    /// Block until a specific region's chain inside this job completes.
    pub fn taskwait_on_region(&self, region: Region) {
        self.rt.taskwait_on_region_for(&self.job, region);
    }

    /// Block until the chain on `h`'s region inside this job completes.
    pub fn taskwait_on<T: ?Sized>(&self, h: &DataHandle<T>) {
        self.taskwait_on_region(h.region());
    }

    /// Regions currently poisoned in this job's fault domain.
    pub fn poisoned_regions(&self) -> Vec<Region> {
        self.job.poisoned.lock().iter().map(|p| p.region).collect()
    }

    /// Forget all of this job's poisoned regions.
    pub fn clear_poison(&self) {
        self.rt.shared.clear_job_poison(&self.job);
    }

    /// Forget poison overlapping `region` in this job (partial overlaps
    /// are split; see [`Runtime::clear_poison_region`]).
    pub fn clear_poison_region(&self, region: Region) {
        self.rt.shared.clear_job_poison_region(&self.job, &region);
    }

    /// Per-job task counters.
    pub fn job_stats(&self) -> JobStats {
        self.job.stats()
    }

    /// A point-in-time snapshot of the job's serving metrics: queue
    /// depth, running/completed/failed/shed counts, observed queue
    /// delays and whether the job's deadline has been missed. Cheap
    /// (a handful of relaxed loads) — safe to poll from a monitor.
    pub fn metrics(&self) -> crate::job::JobMetrics {
        self.job.metrics()
    }

    /// Tasks currently admitted and not yet settled.
    pub fn in_flight(&self) -> u64 {
        self.job.in_flight()
    }

    /// Submit a whole subgraph into this job in one pass; see
    /// [`Runtime::spawn_many`].
    pub fn spawn_many(&self, tasks: Vec<BatchTask>) -> Vec<TaskId> {
        self.rt.spawn_many_blocking(&self.job, tasks)
    }
}

impl Drop for JobHandle<'_> {
    fn drop(&mut self) {
        // Reclaim the job's table slot if it has fully settled; live
        // tasks hold `Arc<JobState>`s, so an active job's entry simply
        // stays until the runtime drops. Index 0 (default job) is never
        // removed.
        if self.job.id.index != 0 && self.job.in_flight() == 0 {
            self.rt.shared.jobs.lock().remove(self.job.id);
        }
    }
}

/// The task-spawning surface shared by [`Runtime`] (implicit default
/// job) and [`JobHandle`] (explicit job). Solver and benchmark code
/// written against `TaskScope` runs unchanged in either mode.
pub trait TaskScope {
    /// Begin building a task in this scope.
    fn task(&self, label: impl Into<String>) -> TaskBuilder<'_>;
    /// Submit a whole batch of tasks into this scope in one pass.
    fn spawn_many(&self, tasks: Vec<BatchTask>) -> Vec<TaskId>;
    /// Block until the chain on `region` in this scope completes.
    fn taskwait_on_region(&self, region: Region);
    /// Wait for this scope's tasks and report failures.
    fn try_wait(&self) -> Result<(), FaultReport>;
    /// Regions currently poisoned in this scope's fault domain.
    fn poisoned_regions(&self) -> Vec<Region>;
    /// Declare scratchpad ranges for replay capture.
    fn declare_spm_ranges(&self, ranges: &[(u64, u64)]);

    /// Register a datum for dependency tracking.
    fn register<T>(&self, name: impl Into<String>, value: T) -> DataHandle<T> {
        DataHandle::new(name, value)
    }

    /// Block until the chain on `h`'s region in this scope completes.
    fn taskwait_on<T: ?Sized>(&self, h: &DataHandle<T>) {
        self.taskwait_on_region(h.region());
    }
}

impl TaskScope for Runtime {
    fn task(&self, label: impl Into<String>) -> TaskBuilder<'_> {
        Runtime::task(self, label)
    }
    fn spawn_many(&self, tasks: Vec<BatchTask>) -> Vec<TaskId> {
        Runtime::spawn_many(self, tasks)
    }
    fn taskwait_on_region(&self, region: Region) {
        Runtime::taskwait_on_region(self, region);
    }
    fn try_wait(&self) -> Result<(), FaultReport> {
        self.try_taskwait()
    }
    fn poisoned_regions(&self) -> Vec<Region> {
        Runtime::poisoned_regions(self)
    }
    fn declare_spm_ranges(&self, ranges: &[(u64, u64)]) {
        Runtime::declare_spm_ranges(self, ranges);
    }
}

impl TaskScope for JobHandle<'_> {
    fn task(&self, label: impl Into<String>) -> TaskBuilder<'_> {
        JobHandle::task(self, label)
    }
    fn spawn_many(&self, tasks: Vec<BatchTask>) -> Vec<TaskId> {
        JobHandle::spawn_many(self, tasks)
    }
    fn taskwait_on_region(&self, region: Region) {
        JobHandle::taskwait_on_region(self, region);
    }
    fn try_wait(&self) -> Result<(), FaultReport> {
        self.try_join()
    }
    fn poisoned_regions(&self) -> Vec<Region> {
        JobHandle::poisoned_regions(self)
    }
    fn declare_spm_ranges(&self, ranges: &[(u64, u64)]) {
        self.rt.declare_spm_ranges(ranges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Criticality;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

    fn rt(workers: usize) -> Runtime {
        Runtime::new(RuntimeConfig::with_workers(workers))
    }

    #[test]
    fn spawn_many_runs_all() {
        let rt = rt(2);
        let hits = Arc::new(AtomicU64::new(0));
        let batch: Vec<BatchTask> = (0..256)
            .map(|i| {
                let h = Arc::clone(&hits);
                BatchTask::new(format!("b{i}")).body(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        let ids = rt.spawn_many(batch);
        assert_eq!(ids.len(), 256);
        // Batch ids are one contiguous claim.
        for w in ids.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
        rt.taskwait();
        assert_eq!(hits.load(Ordering::SeqCst), 256);
        assert_eq!(rt.stats().spawned, 256);
    }

    #[test]
    fn spawn_many_wires_intra_batch_edges() {
        let rt = rt(3);
        let data = rt.register("x", 0u64);
        // writer -> 8 readers -> writer -> 8 readers, all in ONE batch:
        // every reader must observe the value of the latest preceding
        // batch-order writer, exactly as sequential spawns would wire it.
        let cell = Arc::new(AtomicU64::new(0));
        let bad = Arc::new(AtomicU64::new(0));
        let mut batch = Vec::new();
        for round in 1..=4u64 {
            let c = Arc::clone(&cell);
            batch.push(BatchTask::new("w").writes(&data).body(move || {
                c.store(round, Ordering::SeqCst);
            }));
            for _ in 0..8 {
                let c = Arc::clone(&cell);
                let b = Arc::clone(&bad);
                batch.push(BatchTask::new("r").reads(&data).body(move || {
                    if c.load(Ordering::SeqCst) != round {
                        b.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
        }
        rt.spawn_many(batch);
        rt.taskwait();
        assert_eq!(bad.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn spawn_many_chunks_past_job_cap() {
        let rt = rt(2);
        let job = rt.submit(JobSpec::new("capped").max_in_flight(4)).unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        let batch: Vec<BatchTask> = (0..64)
            .map(|_| {
                let h = Arc::clone(&hits);
                BatchTask::new("c").body(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // 64 tasks through a cap of 4: the batch must chunk (an
        // all-or-nothing reservation of 64 could never succeed).
        let ids = job.spawn_many(batch);
        assert_eq!(ids.len(), 64);
        job.join();
        assert_eq!(hits.load(Ordering::SeqCst), 64);
        assert!(job.job_stats().in_flight_hwm <= 4);
    }

    #[test]
    fn spawn_many_into_cancelled_job_discards() {
        let rt = rt(2);
        let job = rt.submit(JobSpec::new("dead")).unwrap();
        assert!(job.cancel());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let ids = job.spawn_many(vec![
            BatchTask::new("a").body(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
            BatchTask::new("b").body(|| {}),
        ]);
        assert_eq!(ids.len(), 2);
        rt.taskwait();
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert_eq!(job.in_flight(), 0);
        assert_eq!(rt.stats().tasks_discarded, 2);
    }

    #[test]
    fn spawn_many_empty_batch_is_noop() {
        let rt = rt(1);
        assert!(rt.spawn_many(Vec::new()).is_empty());
        rt.taskwait();
        assert_eq!(rt.stats().spawned, 0);
    }

    #[test]
    fn single_task_runs() {
        let rt = rt(2);
        let hit = Arc::new(AtomicU64::new(0));
        let h = hit.clone();
        rt.task("t")
            .body(move || {
                h.fetch_add(1, Ordering::SeqCst);
            })
            .spawn();
        rt.taskwait();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        let s = rt.stats();
        assert_eq!(s.spawned, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.ready_at_spawn, 1);
        assert_eq!(s.retry_hist[0], 1, "a clean run lands in bucket 0");
    }

    #[test]
    fn raw_ordering_enforced() {
        let rt = rt(4);
        let data = rt.register("x", 0u64);
        for i in 1..=100u64 {
            let d = data.clone();
            rt.task(format!("inc{i}"))
                .updates(&data)
                .body(move || {
                    let mut v = d.write();
                    *v += i;
                })
                .spawn();
        }
        rt.taskwait();
        assert_eq!(*data.read(), 5050);
        // All 100 inout tasks chain: 99 edges.
        assert_eq!(rt.stats().edges, 99);
    }

    #[test]
    fn independent_tasks_run_concurrently_enough() {
        // Not a strict concurrency proof, just: N independent tasks all
        // complete and none was serialised by spurious edges.
        let rt = rt(4);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..64 {
            let c = counter.clone();
            let h = rt.register(format!("d{i}"), ());
            rt.task(format!("t{i}"))
                .writes(&h)
                .body(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
                .spawn();
        }
        rt.taskwait();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(rt.stats().edges, 0);
        assert_eq!(rt.stats().ready_at_spawn, 64);
    }

    #[test]
    fn config_conveniences_map_to_policy_and_watchdog() {
        let c = RuntimeConfig::with_workers(2)
            .retry_budget(3)
            .stall_timeout(std::time::Duration::from_millis(60))
            .heartbeat_interval(std::time::Duration::from_millis(5));
        assert_eq!(c.retry.max_attempts, 4);
        assert_eq!(
            c.retry.backoff_base,
            RetryPolicy::default().backoff_base,
            "shorthand keeps default backoff"
        );
        assert_eq!(
            c.watchdog.stall_timeout,
            std::time::Duration::from_millis(60)
        );
        assert_eq!(c.watchdog.interval, std::time::Duration::from_millis(5));
        // Defaults unchanged when the conveniences are not used.
        let d = RuntimeConfig::with_workers(1);
        assert_eq!(d.retry.max_attempts, 1);
        assert_eq!(
            d.watchdog.stall_timeout,
            std::time::Duration::from_millis(100)
        );
    }

    #[test]
    fn hardware_poison_fails_readers_and_recovery_write_cleanses() {
        let rt = rt(2);
        let data = rt.register("v", vec![0.0f64; 64]);
        // Machine check: a DUE lost elements 16..32.
        rt.poison_region(data.sub(16, 32), "l2 DUE @0x1400");
        assert_eq!(rt.poisoned_regions().len(), 1);
        // A reader of the lost range fails fast, typed.
        let d = data.clone();
        rt.task("consume")
            .reads(&data)
            .body(move || {
                let _ = d.read();
            })
            .spawn();
        let report = rt.try_taskwait().expect_err("reader must be poisoned");
        assert_eq!(report.len(), 1);
        match &report.failures[0].error {
            TaskError::Poisoned {
                source,
                source_label,
            } => {
                assert_eq!(*source, Runtime::HW_SOURCE);
                assert!(source_label.contains("l2 DUE"));
            }
            e => panic!("expected hardware poison, got {e}"),
        }
        // A recovery task that fully overwrites the range cleanses it.
        let d = data.clone();
        rt.task("recover")
            .region(data.sub(16, 32), AccessMode::Write)
            .body(move || {
                let mut v = d.write();
                for e in &mut v[16..32] {
                    *e = 1.0;
                }
            })
            .spawn();
        rt.taskwait();
        assert!(rt.poisoned_regions().is_empty(), "overwrite cleanses");
        // Readers run normally again.
        let d = data.clone();
        rt.task("reread")
            .reads(&data)
            .body(move || {
                assert_eq!(d.read()[20], 1.0);
            })
            .spawn();
        assert!(rt.try_taskwait().is_ok());
    }

    #[test]
    fn producer_consumer_fan() {
        let rt = rt(4);
        let src = rt.register("src", vec![0u64; 16]);
        {
            let s = src.clone();
            rt.task("produce")
                .writes(&src)
                .body(move || {
                    for (i, v) in s.write().iter_mut().enumerate() {
                        *v = (i * i) as u64;
                    }
                })
                .spawn();
        }
        let sums: Vec<DataHandle<u64>> = (0..4).map(|i| rt.register(format!("s{i}"), 0)).collect();
        for (i, sum) in sums.iter().enumerate() {
            let (s, out) = (src.clone(), sum.clone());
            rt.task(format!("consume{i}"))
                .reads(&src)
                .writes(sum)
                .body(move || {
                    *out.write() = s.read().iter().sum::<u64>() + i as u64;
                })
                .spawn();
        }
        rt.taskwait();
        let base: u64 = (0..16u64).map(|i| i * i).sum();
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s.read(), base + i as u64);
        }
    }

    #[test]
    fn blocked_regions_allow_parallel_writes() {
        let rt = rt(4);
        let data = rt.register("arr", vec![0u32; 400]);
        for b in 0..4u64 {
            let d = data.clone();
            rt.task(format!("blk{b}"))
                .region(data.sub(b * 100, (b + 1) * 100), AccessMode::Write)
                .body(move || {
                    let mut v = d.write();
                    for i in (b * 100)..((b + 1) * 100) {
                        v[i as usize] = b as u32 + 1;
                    }
                })
                .spawn();
        }
        rt.taskwait();
        assert_eq!(rt.stats().edges, 0, "disjoint blocks must not serialise");
        let v = data.read();
        assert!(v[..100].iter().all(|&x| x == 1));
        assert!(v[300..].iter().all(|&x| x == 4));
    }

    #[test]
    fn diamond_ordering() {
        // a writes; b,c read then write their own outputs; d reads both.
        let rt = rt(4);
        let x = rt.register("x", 0u64);
        let y = rt.register("y", 0u64);
        let z = rt.register("z", 0u64);
        let out = rt.register("out", 0u64);
        {
            let x = x.clone();
            rt.task("a").writes(&x).body(move || *x.write() = 5).spawn();
        }
        {
            let (x, y) = (x.clone(), y.clone());
            rt.task("b")
                .reads(&x)
                .writes(&y)
                .body(move || *y.write() = *x.read() * 2)
                .spawn();
        }
        {
            let (x, z) = (x.clone(), z.clone());
            rt.task("c")
                .reads(&x)
                .writes(&z)
                .body(move || *z.write() = *x.read() + 3)
                .spawn();
        }
        {
            let (y, z, out) = (y.clone(), z.clone(), out.clone());
            rt.task("d")
                .reads(&y)
                .reads(&z)
                .writes(&out)
                .body(move || *out.write() = *y.read() + *z.read())
                .spawn();
        }
        rt.taskwait();
        assert_eq!(*out.read(), 18);
    }

    #[test]
    fn taskwait_then_more_tasks() {
        let rt = rt(2);
        let x = rt.register("x", 1u64);
        {
            let x = x.clone();
            rt.task("a")
                .updates(&x)
                .body(move || *x.write() *= 2)
                .spawn();
        }
        rt.taskwait();
        assert_eq!(*x.read(), 2);
        {
            let x = x.clone();
            rt.task("b")
                .updates(&x)
                .body(move || *x.write() *= 3)
                .spawn();
        }
        rt.taskwait();
        assert_eq!(*x.read(), 6);
    }

    #[test]
    fn panic_propagates_at_taskwait() {
        let rt = rt(2);
        rt.task("boom").body(|| panic!("kaput")).spawn();
        let err = rt.try_taskwait().unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err.failures[0].label, "boom");
        assert!(matches!(
            &err.failures[0].error,
            TaskError::Panicked(msg) if msg.contains("kaput")
        ));
        assert_eq!(rt.stats().panicked, 1);
        assert_eq!(rt.stats().failed_tasks, 1);
        // Runtime stays usable.
        let ok = Arc::new(AtomicU64::new(0));
        let o = ok.clone();
        rt.task("after")
            .body(move || {
                o.store(1, Ordering::SeqCst);
            })
            .spawn();
        rt.try_taskwait().unwrap();
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "task(s) failed")]
    fn taskwait_panics_on_task_panic() {
        let rt = rt(1);
        rt.task("boom").body(|| panic!("inner")).spawn();
        rt.taskwait();
    }

    #[test]
    fn all_panics_reported_with_labels() {
        // Satellite (a): the report lists *every* panic, not just the
        // first, each with its task label.
        let rt = rt(2);
        rt.task("first-bad").body(|| panic!("one")).spawn();
        rt.task("fine").body(|| {}).spawn();
        rt.task("second-bad").body(|| panic!("two")).spawn();
        let err = rt.try_taskwait().unwrap_err();
        assert_eq!(err.len(), 2, "both panics must be reported");
        let mut labels: Vec<&str> = err.failures.iter().map(|f| f.label.as_str()).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec!["first-bad", "second-bad"]);
        for f in &err.failures {
            assert!(matches!(f.error, TaskError::Panicked(_)));
            assert_eq!(f.attempts, 1);
        }
        assert_eq!(err.panicked().count(), 2);
    }

    #[test]
    fn idempotent_retry_recovers() {
        // Inject exactly two panics into the only task; with three
        // allowed retries it must recover and run the body exactly once.
        let rt = Runtime::new(
            RuntimeConfig::with_workers(2)
                .retry(RetryPolicy::retries(4))
                .fault_plan(FaultPlan::new(11).panic_rate(1.0).max_panics_per_task(2)),
        );
        let runs = Arc::new(AtomicU64::new(0));
        let r = runs.clone();
        rt.task("flaky")
            .idempotent(move || {
                r.fetch_add(1, Ordering::SeqCst);
            })
            .spawn();
        rt.try_taskwait().expect("retries must recover");
        assert_eq!(
            runs.load(Ordering::SeqCst),
            1,
            "body ran once (injected panics fire pre-body)"
        );
        let s = rt.stats();
        assert_eq!(s.panicked, 2);
        assert_eq!(s.retried, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.failed_tasks, 0);
        assert_eq!(s.retry_hist[2], 1, "settled after two failed attempts");
    }

    #[test]
    fn exhausted_retries_fail_with_attempt_count() {
        let rt = Runtime::new(
            RuntimeConfig::with_workers(1)
                .retry(RetryPolicy::retries(1))
                .fault_plan(FaultPlan::new(5).panic_rate(1.0)),
        );
        let runs = Arc::new(AtomicU64::new(0));
        let r = runs.clone();
        rt.task("doomed")
            .idempotent(move || {
                r.fetch_add(1, Ordering::SeqCst);
            })
            .spawn();
        let err = rt.try_taskwait().unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err.failures[0].attempts, 2, "first run + one retry");
        assert!(matches!(
            &err.failures[0].error,
            TaskError::Panicked(msg) if msg.contains("injected fault")
        ));
        assert_eq!(runs.load(Ordering::SeqCst), 0, "injection fires pre-body");
        assert_eq!(rt.stats().retried, 1);
        assert_eq!(rt.stats().failed_tasks, 1);
    }

    #[test]
    fn non_idempotent_failure_poisons_readers_transitively() {
        let rt = rt(2);
        let x = rt.register("x", 0u64);
        let y = rt.register("y", 0u64);
        let ran = Arc::new(AtomicU64::new(0));
        {
            let x = x.clone();
            rt.task("a")
                .writes(&x)
                .body(move || {
                    *x.write() = 1;
                    panic!("a dies");
                })
                .spawn();
        }
        {
            let (x, y, ran) = (x.clone(), y.clone(), ran.clone());
            rt.task("b")
                .reads(&x)
                .writes(&y)
                .body(move || {
                    let _ = *x.read();
                    *y.write() = 2;
                    ran.fetch_add(1, Ordering::SeqCst);
                })
                .spawn();
        }
        {
            let (y, ran) = (y.clone(), ran.clone());
            rt.task("c")
                .reads(&y)
                .body(move || {
                    let _ = *y.read();
                    ran.fetch_add(1, Ordering::SeqCst);
                })
                .spawn();
        }
        let err = rt.try_taskwait().unwrap_err();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "victims must not run");
        assert_eq!(err.len(), 3);
        assert_eq!(err.panicked().count(), 1);
        assert_eq!(err.poisoned().count(), 2);
        let b = err.failures.iter().find(|f| f.label == "b").unwrap();
        assert!(matches!(
            &b.error,
            TaskError::Poisoned { source_label, .. } if source_label == "a"
        ));
        let c = err.failures.iter().find(|f| f.label == "c").unwrap();
        assert!(matches!(
            &c.error,
            TaskError::Poisoned { source_label, .. } if source_label == "b"
        ));
        assert_eq!(rt.stats().poisoned_tasks, 2);
        assert_eq!(rt.stats().failed_tasks, 3);
        assert_eq!(rt.poisoned_regions().len(), 2, "x and y are poisoned");
    }

    #[test]
    fn overwriting_task_cleanses_poison() {
        let rt = rt(2);
        let x = rt.register("x", 0u64);
        {
            let x = x.clone();
            rt.task("bad-writer")
                .writes(&x)
                .body(move || {
                    *x.write() = 13;
                    panic!("corrupted");
                })
                .spawn();
        }
        let _ = rt.try_taskwait().unwrap_err();
        assert_eq!(rt.poisoned_regions().len(), 1);
        // A fresh writer overwrites the whole region: poison is gone and
        // readers work again.
        {
            let x = x.clone();
            rt.task("repair")
                .writes(&x)
                .body(move || *x.write() = 7)
                .spawn();
        }
        let seen = Arc::new(AtomicU64::new(0));
        {
            let (x, seen) = (x.clone(), seen.clone());
            rt.task("reader")
                .reads(&x)
                .body(move || {
                    seen.store(*x.read(), Ordering::SeqCst);
                })
                .spawn();
        }
        rt.try_taskwait().expect("repaired region must be clean");
        assert!(rt.poisoned_regions().is_empty());
        assert_eq!(seen.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn taskwait_on_returns_despite_poisoned_region() {
        let rt = rt(2);
        let x = rt.register("x", 0u64);
        {
            let x = x.clone();
            rt.task("bad")
                .writes(&x)
                .body(move || {
                    *x.write() = 1;
                    panic!("dead writer");
                })
                .spawn();
        }
        // The sentinel is exempt from poison: this must not hang or
        // count as a failed task.
        rt.taskwait_on(&x);
        let err = rt.try_taskwait().unwrap_err();
        assert_eq!(err.len(), 1, "only the real task failed");
        assert_eq!(err.failures[0].label, "bad");
    }

    #[test]
    fn clear_poison_unmarks_pending_victims() {
        let rt = rt(2);
        let x = rt.register("x", 0u64);
        {
            let x = x.clone();
            rt.task("bad")
                .writes(&x)
                .body(move || {
                    *x.write() = 1;
                    panic!("boom");
                })
                .spawn();
        }
        let _ = rt.try_taskwait().unwrap_err();
        rt.clear_poison();
        assert!(rt.poisoned_regions().is_empty());
        let ran = Arc::new(AtomicU64::new(0));
        {
            let (x, ran) = (x.clone(), ran.clone());
            rt.task("reader")
                .reads(&x)
                .body(move || {
                    let _ = *x.read();
                    ran.store(1, Ordering::SeqCst);
                })
                .spawn();
        }
        rt.try_taskwait().expect("poison was cleared");
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_spawn_from_task_body() {
        // A task spawning tasks: the runtime handle is not Send-shareable
        // into bodies (lifetime), so nested spawning goes through a channel
        // drained by the main thread — but direct nested spawn works via
        // scoped Arc. Here we emulate the common OmpSs pattern where a
        // task spawns children through the same runtime by using Arc.
        let rt = Arc::new(rt(4));
        let counter = Arc::new(AtomicU64::new(0));
        // Note: spawning from inside a body requires 'static; we pass the
        // Arc'd runtime in. taskwait() from inside bodies is forbidden,
        // spawning is fine.
        let inner_rt = Arc::downgrade(&rt);
        let c = counter.clone();
        rt.task("parent")
            .body(move || {
                if let Some(rt) = inner_rt.upgrade() {
                    for _ in 0..10 {
                        let c = c.clone();
                        rt.task("child")
                            .body(move || {
                                c.fetch_add(1, Ordering::SeqCst);
                            })
                            .spawn();
                    }
                }
            })
            .spawn();
        // taskwait sees the children because the parent increments
        // `outstanding` before it finishes... but there is a window: wait
        // until quiescent by polling spawn counts.
        loop {
            rt.taskwait();
            let s = rt.stats();
            if s.spawned == s.completed && s.spawned == 11 {
                break;
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn per_worker_counters_account_for_every_task() {
        let rt = rt(3);
        for i in 0..60 {
            rt.task(format!("t{i}")).body(|| {}).spawn();
        }
        rt.taskwait();
        let per = rt.per_worker_executed();
        assert_eq!(per.len(), 3);
        assert_eq!(per.iter().sum::<u64>(), 60);
    }

    #[test]
    fn taskwait_on_waits_only_for_the_region() {
        let rt = rt(2);
        let fast = rt.register("fast", 0u64);
        let slow_running = Arc::new(AtomicU64::new(0));
        // A slow task on an unrelated datum.
        let slow = rt.register("slow", 0u64);
        {
            let (s, flag) = (slow.clone(), slow_running.clone());
            rt.task("slow")
                .updates(&slow)
                .body(move || {
                    flag.store(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(150));
                    *s.write() = 99;
                    flag.store(2, Ordering::SeqCst);
                })
                .spawn();
        }
        // A quick task on the region we will wait on.
        {
            let f = fast.clone();
            rt.task("fast")
                .updates(&fast)
                .body(move || *f.write() = 7)
                .spawn();
        }
        rt.taskwait_on(&fast);
        assert_eq!(*fast.read(), 7, "the awaited region is complete");
        assert!(
            slow_running.load(Ordering::SeqCst) < 2,
            "taskwait_on must not have waited for the slow task"
        );
        rt.taskwait();
        assert_eq!(*slow.read(), 99);
    }

    #[test]
    fn taskwait_on_region_waits_for_block_writers() {
        let rt = rt(2);
        let data = rt.register("arr", vec![0u32; 100]);
        {
            let d = data.clone();
            rt.task("blk")
                .region(data.sub(0, 50), AccessMode::Write)
                .body(move || {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    d.write()[..50].fill(3);
                })
                .spawn();
        }
        rt.taskwait_on_region(data.sub(0, 50));
        assert!(data.read()[..50].iter().all(|&v| v == 3));
        rt.taskwait();
    }

    #[test]
    fn graph_recording() {
        let rt = Runtime::new(RuntimeConfig::with_workers(2).record_graph(true));
        let x = rt.register("x", 0u8);
        {
            let x = x.clone();
            rt.task("w").writes(&x).body(move || *x.write() = 1).spawn();
        }
        {
            let x = x.clone();
            rt.task("r")
                .reads(&x)
                .body(move || {
                    let _ = *x.read();
                })
                .spawn();
        }
        rt.taskwait();
        let g = rt.graph().expect("recording enabled");
        assert_eq!(g.len(), 2);
        assert_eq!(g.node(TaskId(1)).preds, vec![TaskId(0)]);
        assert!(g.to_dot().contains("w (1)"));
    }

    #[test]
    fn priorities_respected_by_priority_policy() {
        // One worker + Priority policy: spawn a blocker first so the rest
        // queue up, then check execution order follows priority.
        let rt = Runtime::new(RuntimeConfig::with_workers(1).policy(SchedulerPolicy::Priority));
        let order = Arc::new(Mutex::new(Vec::<i32>::new()));
        let gate = rt.register("gate", ());
        {
            let g = gate.clone();
            rt.task("blocker")
                .writes(&gate)
                .body(move || {
                    let _w = g.write();
                    std::thread::sleep(std::time::Duration::from_millis(50));
                })
                .spawn();
        }
        for p in [1, 3, 2] {
            let o = order.clone();
            rt.task(format!("p{p}"))
                .reads(&gate) // all wait for the blocker
                .priority(p)
                .body(move || o.lock().push(p))
                .spawn();
        }
        rt.taskwait();
        assert_eq!(*order.lock(), vec![3, 2, 1]);
    }

    #[test]
    fn lifo_policy_runs_latest_ready_first() {
        // One worker, LIFO: after the gate opens, the most recently
        // spawned dependent task runs first.
        let rt = Runtime::new(RuntimeConfig::with_workers(1).policy(SchedulerPolicy::Lifo));
        let order = Arc::new(Mutex::new(Vec::<usize>::new()));
        let gate = rt.register("gate", ());
        {
            let g = gate.clone();
            rt.task("blocker")
                .writes(&gate)
                .body(move || {
                    let _w = g.write();
                    std::thread::sleep(std::time::Duration::from_millis(40));
                })
                .spawn();
        }
        for i in 0..4 {
            let o = order.clone();
            rt.task(format!("t{i}"))
                .reads(&gate)
                .body(move || o.lock().push(i))
                .spawn();
        }
        rt.taskwait();
        let got = order.lock().clone();
        // All released together on blocker completion; LIFO pops the
        // last pushed first.
        assert_eq!(got, vec![3, 2, 1, 0]);
    }

    #[test]
    fn criticality_aware_policy_runs_everything() {
        let rt = Runtime::new(
            RuntimeConfig::with_workers(4)
                .policy(SchedulerPolicy::CriticalityAware { fast_workers: 1 }),
        );
        let n = Arc::new(AtomicU64::new(0));
        for i in 0..50 {
            let n = n.clone();
            rt.task(format!("t{i}"))
                .criticality(if i % 5 == 0 {
                    Criticality::Critical
                } else {
                    Criticality::NonCritical
                })
                .body(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
                .spawn();
        }
        rt.taskwait();
        assert_eq!(n.load(Ordering::SeqCst), 50);
        assert_eq!(rt.stats().critical_tasks, 10);
    }

    #[test]
    fn observer_sees_every_task_with_worker_ids() {
        use std::sync::Mutex as StdMutex;
        struct Recorder {
            events: StdMutex<Vec<(usize, TaskId, bool, &'static str)>>,
        }
        impl crate::runtime::TaskObserver for Recorder {
            fn on_start(&self, worker: usize, task: TaskId, critical: bool) {
                self.events
                    .lock()
                    .unwrap()
                    .push((worker, task, critical, "start"));
            }
            fn on_complete(&self, worker: usize, task: TaskId) {
                self.events
                    .lock()
                    .unwrap()
                    .push((worker, task, false, "done"));
            }
        }
        let rec = Arc::new(Recorder {
            events: StdMutex::new(Vec::new()),
        });
        let rt = Runtime::new(RuntimeConfig::with_workers(2).observer(rec.clone()));
        for i in 0..10 {
            rt.task(format!("t{i}"))
                .criticality(if i == 0 {
                    Criticality::Critical
                } else {
                    Criticality::NonCritical
                })
                .body(|| {})
                .spawn();
        }
        rt.taskwait();
        let ev = rec.events.lock().unwrap();
        assert_eq!(ev.len(), 20, "start+done per task");
        assert!(ev.iter().all(|&(w, _, _, _)| w < 2));
        // Each task's start precedes its done.
        for t in 0..10u32 {
            let s = ev
                .iter()
                .position(|&(_, id, _, k)| id == TaskId(t) && k == "start");
            let d = ev
                .iter()
                .position(|&(_, id, _, k)| id == TaskId(t) && k == "done");
            assert!(s.unwrap() < d.unwrap());
        }
        // The critical annotation reached the observer.
        assert!(ev
            .iter()
            .any(|&(_, id, c, k)| id == TaskId(0) && c && k == "start"));
    }

    #[test]
    fn observer_on_fault_fires_per_panicked_attempt() {
        #[derive(Default)]
        struct Counter {
            starts: AtomicU32,
            dones: AtomicU32,
            faults: AtomicU32,
        }
        impl crate::runtime::TaskObserver for Counter {
            fn on_start(&self, _worker: usize, _task: TaskId, _critical: bool) {
                self.starts.fetch_add(1, Ordering::SeqCst);
            }
            fn on_complete(&self, _worker: usize, _task: TaskId) {
                self.dones.fetch_add(1, Ordering::SeqCst);
            }
            fn on_fault(&self, _worker: usize, _task: TaskId) {
                self.faults.fetch_add(1, Ordering::SeqCst);
            }
        }
        let obs = Arc::new(Counter::default());
        let rt = Runtime::new(
            RuntimeConfig::with_workers(2)
                .observer(obs.clone())
                .retry(RetryPolicy::retries(2)),
        );
        // The body itself panics on the first attempt (unlike a
        // preflight-injected fault, which fires before `on_start`).
        let tries = Arc::new(AtomicU32::new(0));
        {
            let tries = Arc::clone(&tries);
            rt.task("flaky")
                .idempotent(move || {
                    if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                        panic!("first attempt dies");
                    }
                })
                .spawn();
        }
        rt.taskwait();
        assert_eq!(tries.load(Ordering::SeqCst), 2);
        assert_eq!(
            obs.starts.load(Ordering::SeqCst),
            2,
            "both attempts started"
        );
        assert_eq!(
            obs.faults.load(Ordering::SeqCst),
            1,
            "first attempt faulted"
        );
        assert_eq!(obs.dones.load(Ordering::SeqCst), 1, "retry completed");
    }

    #[test]
    fn war_prevents_early_overwrite() {
        let rt = rt(4);
        let x = rt.register("x", 7u64);
        let seen = rt.register("seen", 0u64);
        {
            let (x, seen) = (x.clone(), seen.clone());
            rt.task("reader")
                .reads(&x)
                .writes(&seen)
                .body(move || {
                    // Slow reader: a WAR violation would let the writer
                    // change x to 99 before we read it.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    *seen.write() = *x.read();
                })
                .spawn();
        }
        {
            let x = x.clone();
            rt.task("writer")
                .writes(&x)
                .body(move || *x.write() = 99)
                .spawn();
        }
        rt.taskwait();
        assert_eq!(*seen.read(), 7, "WAR edge must delay the writer");
        assert_eq!(*x.read(), 99);
    }
}
