//! # raa-runtime — an OmpSs-like task dataflow runtime
//!
//! This crate is the central substrate of the Runtime-Aware Architecture
//! (RAA) reproduction: a task-based dataflow runtime in the OmpSs /
//! OpenMP-4.0 `depend` tradition.  Programs declare *tasks* with *data
//! dependencies* over registered memory *regions*; the runtime builds the
//! Task Dependency Graph (TDG) online, enforcing the classic RAW / WAR / WAW
//! hazards exactly like a superscalar core enforces them between
//! instructions — the paper's founding analogy ("handle the tasks in the
//! same way as superscalar processors manage ILP").
//!
//! Two execution engines share the same TDG machinery:
//!
//! * [`Runtime`] — a real multithreaded executor with work-stealing worker
//!   threads (used by the resilient CG solver and the PARSEC-like apps).
//! * [`simsched::ScheduleSimulator`] — a deterministic virtual-time list
//!   scheduler over N virtual cores with per-core DVFS and power
//!   integration (used for the paper's §3.1 criticality/EDP experiment and
//!   the Fig. 5 scalability curves).
//!
//! ## Quick start
//!
//! ```
//! use raa_runtime::{Runtime, RuntimeConfig};
//!
//! let rt = Runtime::new(RuntimeConfig::with_workers(2));
//! let data = rt.register("x", vec![0u64; 8]);
//!
//! // Producer task: writes the whole region.
//! {
//!     let data = data.clone();
//!     rt.task("produce")
//!         .writes(&data)
//!         .body(move || {
//!             for (i, v) in data.write().iter_mut().enumerate() {
//!                 *v = i as u64;
//!             }
//!         })
//!         .spawn();
//! }
//!
//! // Consumer task: the runtime orders it after the producer (RAW).
//! let total = rt.register("total", 0u64);
//! {
//!     let (data, total) = (data.clone(), total.clone());
//!     rt.task("consume")
//!         .reads(&data)
//!         .writes(&total)
//!         .body(move || {
//!             *total.write() = data.read().iter().sum();
//!         })
//!         .spawn();
//! }
//!
//! rt.taskwait();
//! assert_eq!(*total.read(), 28);
//! ```

pub mod blocked;
pub mod criticality;
pub mod deps;
pub mod deque;
pub mod export;
pub mod fault;
pub mod flight;
pub mod graph;
pub mod job;
pub mod overload;
pub mod pool;
pub mod program;
pub mod region;
pub mod runtime;
pub mod scheduler;
pub mod simsched;
pub mod stats;
pub mod task;
pub mod telemetry;
pub mod topology;
pub mod trace;

pub use blocked::Blocks;
pub use export::{
    chrome_trace_json, critical_path_attribution, program_json, prometheus_text, telemetry_json,
    CriticalPathReport, MetricsReport,
};
pub use fault::{
    FaultPlan, FaultReport, InjectedFault, RetryPolicy, TaskError, TaskFailure, WatchdogConfig,
};
pub use flight::{FlightBundle, FlightReason};
pub use graph::TaskGraph;
pub use job::{AdmissionError, DrainReport, JobId, JobMetrics, JobSpec, JobStats};
pub use overload::{ShedController, ShedSnapshot};
pub use program::TaskProgram;
pub use region::{AccessMode, DataHandle, Region, RegionId, RegionRange};
pub use runtime::{
    BatchTask, JobHandle, ObserverFanout, Runtime, RuntimeConfig, TaskBuilder, TaskObserver,
    TaskScope,
};
pub use scheduler::{QosClass, SchedulerPolicy};
pub use simsched::{CorePool, ScheduleSimulator, SimPolicy, SimReport};
pub use stats::{ClusterSteals, ContentionReport, StatsSnapshot, VictimSteals};
pub use task::{Criticality, ExecBody, TaskId, TaskMeta};
pub use telemetry::{
    Anomaly, HistSnapshot, LogHistogram, TelemetryDelta, TelemetrySnapshot, TenantTelemetry,
    TriggerRules,
};
pub use topology::{
    ClusterSchedule, FlatSchedule, HierarchicalSchedule, StealCosts, Topology, NO_HOME,
};
pub use trace::{Trace, TraceConfig, TraceEvent, TraceEventKind, TraceSession, Tracer};
