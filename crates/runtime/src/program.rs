//! The portable task-program IR — the lingua franca of every substrate.
//!
//! A [`TaskProgram`] is one task program, described once and consumed
//! everywhere: the explicit TDG (regions, cost hints, criticality
//! annotations) plus two things only a *real* execution can supply —
//! per-task **measured durations** and per-task **classified
//! memory-reference streams** ([`raa_workloads::TraceEvent`]).  The same
//! recorded program then drives all three substrates:
//!
//! * the real [`Runtime`] re-executes it ([`TaskProgram::spawn_on`]),
//! * the deterministic schedule simulator replays it
//!   ([`crate::simsched::ScheduleSimulator::for_program`]) with measured
//!   or stream-derived costs in place of hand-tuned hints,
//! * the memory-hierarchy machine (`raa-sim`) replays each task's
//!   reference stream on the core the schedule placed it on.
//!
//! This is the BDDT/Myrmics move: a single explicit dependency-region
//! program re-targeted across heterogeneous substrates, instead of three
//! hand-maintained copies of the same graph.
//!
//! Recording is cooperative: a task body that wants its reference stream
//! captured emits events through [`emit`]; the runtime installs a
//! thread-local sink around each body when
//! [`crate::runtime::RuntimeConfig::record_program`] is on, and [`emit`]
//! is free (a thread-local read) when it is not. Durations are measured
//! unconditionally while recording.

use std::cell::RefCell;

use raa_workloads::trace::{TraceEvent, TraceSummary};

use crate::graph::{TaskGraph, TaskNode};
use crate::region::DataHandle;
use crate::runtime::Runtime;
use crate::task::{TaskBody, TaskId};

/// A portable task program: one TDG plus the optional measurements a real
/// run recorded into it. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct TaskProgram {
    graph: TaskGraph,
    /// Measured wall-clock duration (ns) per task, by dense [`TaskId`].
    measured_ns: Vec<Option<u64>>,
    /// Classified memory-reference stream per task (empty when the body
    /// emitted nothing).
    streams: Vec<Vec<TraceEvent>>,
    /// SPM-mapped address ranges of the program's data layout, as
    /// declared via [`Runtime::declare_spm_ranges`].
    spm_ranges: Vec<(u64, u64)>,
}

impl TaskProgram {
    /// Wrap a bare TDG (no measurements yet) — the entry point for
    /// hand-built and generator graphs.
    pub fn from_graph(graph: TaskGraph) -> Self {
        let n = graph.len();
        TaskProgram {
            graph,
            measured_ns: vec![None; n],
            streams: vec![Vec::new(); n],
            spm_ranges: Vec::new(),
        }
    }

    /// The underlying dependency graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    pub fn len(&self) -> usize {
        self.graph.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Record a measured duration for one task.
    pub fn set_measured(&mut self, id: TaskId, ns: u64) {
        if id.index() < self.measured_ns.len() {
            self.measured_ns[id.index()] = Some(ns);
        }
    }

    /// The measured duration of `id`, if the recording captured one.
    pub fn measured_ns(&self, id: TaskId) -> Option<u64> {
        self.measured_ns.get(id.index()).copied().flatten()
    }

    /// How many tasks carry a measured duration.
    pub fn measured_count(&self) -> usize {
        self.measured_ns.iter().filter(|m| m.is_some()).count()
    }

    /// Attach a task's classified reference stream.
    pub fn set_stream(&mut self, id: TaskId, events: Vec<TraceEvent>) {
        if id.index() < self.streams.len() {
            self.streams[id.index()] = events;
        }
    }

    /// The classified reference stream of `id` (empty if none recorded).
    pub fn stream(&self, id: TaskId) -> &[TraceEvent] {
        self.streams
            .get(id.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Tasks with a non-empty reference stream.
    pub fn stream_count(&self) -> usize {
        self.streams.iter().filter(|s| !s.is_empty()).count()
    }

    /// Total classified events across all task streams.
    pub fn event_count(&self) -> usize {
        self.streams.iter().map(|s| s.len()).sum()
    }

    /// Summary of all recorded streams (classification mix).
    pub fn trace_summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for stream in &self.streams {
            for ev in stream {
                s.add(ev);
            }
        }
        s
    }

    /// Declare the SPM-mapped ranges of the program's address layout.
    pub fn set_spm_ranges(&mut self, ranges: Vec<(u64, u64)>) {
        self.spm_ranges = ranges;
    }

    /// SPM-mapped `(base, bytes)` ranges for machine replay.
    pub fn spm_ranges(&self) -> &[(u64, u64)] {
        &self.spm_ranges
    }

    /// The graph the *schedule* simulator should consume: task costs are
    /// the measured durations (ns, floored at 1) where the recording has
    /// them, the static hints elsewhere. With no measurements this is an
    /// exact copy of the hint graph.
    pub fn scheduling_graph(&self) -> TaskGraph {
        let mut g = self.graph.clone();
        for (i, m) in self.measured_ns.iter().enumerate() {
            if let Some(ns) = m {
                g.node_mut(TaskId(i as u32)).meta.cost = (*ns).max(1);
            }
        }
        g
    }

    /// Abstract cycles implied by one task's reference stream: its pure
    /// compute cycles plus a nominal per-reference charge. Unlike the
    /// measured wall-clock durations this is *deterministic* — two
    /// recordings of the same program yield the same value — which is
    /// what replay benches diff their output on.
    pub fn stream_cost(&self, id: TaskId) -> Option<u64> {
        /// Nominal cycles charged per memory reference (an L1-hit-ish
        /// constant; the machine simulator, not this cost, decides real
        /// memory behaviour).
        const MEM_REF_CYCLES: u64 = 4;
        let stream = self.stream(id);
        if stream.is_empty() {
            return None;
        }
        let mut cost = 0u64;
        for ev in stream {
            match ev {
                TraceEvent::Compute(c) => cost += *c as u64,
                TraceEvent::Mem(_) => cost += MEM_REF_CYCLES,
                TraceEvent::Barrier => {}
            }
        }
        Some(cost.max(1))
    }

    /// The graph replay benches schedule on: costs derived from the
    /// recorded streams ([`TaskProgram::stream_cost`]) where available,
    /// hints elsewhere. Fully deterministic across recordings.
    pub fn replay_graph(&self) -> TaskGraph {
        let mut g = self.graph.clone();
        for i in 0..self.graph.len() {
            let id = TaskId(i as u32);
            if let Some(cost) = self.stream_cost(id) {
                g.node_mut(id).meta.cost = cost;
            }
        }
        g
    }

    /// Re-execute the program on a real [`Runtime`]: spawn one task per
    /// node, in id order, with `make_body` supplying each body. The
    /// explicit edges are encoded through one synthetic region per task
    /// (a task writes its own region and reads its predecessors'), so the
    /// runtime's dependency discovery reconstructs *exactly* the
    /// program's edge set — the round-trip the IR proptests pin down.
    ///
    /// Returns the spawned [`TaskId`]s in node order. The caller still
    /// owns the taskwait.
    pub fn spawn_on<F>(&self, rt: &Runtime, mut make_body: F) -> Vec<TaskId>
    where
        F: FnMut(&TaskNode) -> TaskBody,
    {
        let handles: Vec<DataHandle<()>> = self
            .graph
            .nodes()
            .map(|n| DataHandle::new(n.meta.label.clone(), ()))
            .collect();
        let mut spawned = Vec::with_capacity(self.graph.len());
        for node in self.graph.nodes() {
            let mut b = rt
                .task(node.meta.label.clone())
                .cost(node.meta.cost)
                .priority(node.meta.priority)
                .criticality(node.meta.criticality)
                .writes(&handles[node.id.index()]);
            for p in &node.preds {
                b = b.reads(&handles[p.index()]);
            }
            spawned.push(b.body(make_body(node)).spawn());
        }
        spawned
    }
}

// ------------------------------------------------------- recording hook
//
// Task bodies emit classified references into a thread-local sink the
// runtime installs around each body while program recording is on. Kept
// thread-local so emission needs no lock and nests correctly if a body
// ever runs another body inline (taskwait on a worker).

thread_local! {
    static SINK: RefCell<Option<Vec<TraceEvent>>> = const { RefCell::new(None) };
}

/// True while the current thread is inside a recorded task body — lets
/// bodies skip building events entirely when nobody is listening.
pub fn recording() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Append one classified event to the current task's stream. No-op when
/// the runtime is not recording (see [`recording`]).
pub fn emit(ev: TraceEvent) {
    SINK.with(|s| {
        if let Some(v) = s.borrow_mut().as_mut() {
            v.push(ev);
        }
    });
}

/// Scoped installation of the thread-local sink around one task body.
/// [`SinkGuard::finish`] collects the events; dropping without `finish`
/// (body unwound) discards them. Either way the previous sink (if the
/// body ran nested inside another recorded body) is restored.
pub(crate) struct SinkGuard {
    prev: Option<Vec<TraceEvent>>,
    finished: bool,
}

impl SinkGuard {
    pub(crate) fn install() -> Self {
        let prev = SINK.with(|s| s.borrow_mut().replace(Vec::new()));
        SinkGuard {
            prev,
            finished: false,
        }
    }

    pub(crate) fn finish(mut self) -> Vec<TraceEvent> {
        self.finished = true;
        SINK.with(|s| {
            let mut sink = s.borrow_mut();
            let events = sink.take().unwrap_or_default();
            *sink = self.prev.take();
            events
        })
    }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        if !self.finished {
            SINK.with(|s| {
                *s.borrow_mut() = self.prev.take();
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::generators;
    use crate::runtime::RuntimeConfig;
    use crate::task::Criticality;
    use raa_workloads::trace::{MemRef, RefClass};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn from_graph_has_no_measurements() {
        let p = TaskProgram::from_graph(generators::chain(5, 7));
        assert_eq!(p.len(), 5);
        assert_eq!(p.measured_count(), 0);
        assert_eq!(p.stream_count(), 0);
        assert_eq!(p.event_count(), 0);
        // Without measurements the scheduling graph is the hint graph.
        let g = p.scheduling_graph();
        assert!(g.nodes().all(|n| n.meta.cost == 7));
    }

    #[test]
    fn measured_durations_override_hints() {
        let mut p = TaskProgram::from_graph(generators::chain(3, 7));
        p.set_measured(TaskId(1), 1234);
        p.set_measured(TaskId(2), 0); // floored at 1
        assert_eq!(p.measured_count(), 2);
        let g = p.scheduling_graph();
        assert_eq!(g.node(TaskId(0)).meta.cost, 7);
        assert_eq!(g.node(TaskId(1)).meta.cost, 1234);
        assert_eq!(g.node(TaskId(2)).meta.cost, 1);
    }

    #[test]
    fn stream_costs_are_deterministic_and_override_hints() {
        let mut p = TaskProgram::from_graph(generators::chain(2, 9));
        p.set_stream(
            TaskId(0),
            vec![
                TraceEvent::Mem(MemRef::load(64, 8, RefClass::Strided)),
                TraceEvent::Compute(10),
                TraceEvent::Barrier,
            ],
        );
        assert_eq!(p.stream_cost(TaskId(0)), Some(14));
        assert_eq!(p.stream_cost(TaskId(1)), None);
        let g = p.replay_graph();
        assert_eq!(g.node(TaskId(0)).meta.cost, 14);
        assert_eq!(g.node(TaskId(1)).meta.cost, 9, "no stream keeps the hint");
        let s = p.trace_summary();
        assert_eq!(s.mem_refs, 1);
        assert_eq!(s.compute_cycles, 10);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        assert!(!recording());
        emit(TraceEvent::Compute(1)); // must not panic or leak
        assert!(!recording());
    }

    #[test]
    fn sink_guard_collects_and_restores() {
        let outer = SinkGuard::install();
        assert!(recording());
        emit(TraceEvent::Compute(1));
        {
            let inner = SinkGuard::install();
            emit(TraceEvent::Compute(2));
            let evs = inner.finish();
            assert_eq!(evs, vec![TraceEvent::Compute(2)]);
        }
        // The outer sink is restored with its event intact.
        emit(TraceEvent::Compute(3));
        let evs = outer.finish();
        assert_eq!(evs, vec![TraceEvent::Compute(1), TraceEvent::Compute(3)]);
        assert!(!recording());
    }

    #[test]
    fn sink_guard_drop_discards_but_restores() {
        let outer = SinkGuard::install();
        {
            let _inner = SinkGuard::install();
            emit(TraceEvent::Compute(9));
            // dropped without finish: events discarded
        }
        assert!(recording(), "outer sink restored after inner drop");
        let evs = outer.finish();
        assert!(evs.is_empty());
    }

    #[test]
    fn spawn_on_reexecutes_with_original_edges() {
        let g = generators::chain_with_fans(4, 2, 10, 1);
        let prog = TaskProgram::from_graph(g);
        let rt = Runtime::new(RuntimeConfig::with_workers(2).record_graph(true));
        let ran = Arc::new(AtomicU64::new(0));
        let ids = prog.spawn_on(&rt, |_node| {
            let ran = Arc::clone(&ran);
            Box::new(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })
        });
        rt.taskwait();
        assert_eq!(ids.len(), prog.len());
        assert_eq!(ran.load(Ordering::Relaxed) as usize, prog.len());
        let rec = rt.graph().expect("recording was on");
        assert_eq!(rec.len(), prog.len());
        for node in prog.graph().nodes() {
            assert_eq!(
                rec.node(node.id).preds,
                node.preds,
                "edge set must round-trip through the real runtime"
            );
        }
    }

    #[test]
    fn spawn_on_preserves_annotations() {
        let mut g = TaskGraph::new();
        let mut m = crate::task::TaskMeta::new("hot");
        m.cost = 50;
        m.criticality = Criticality::Critical;
        m.priority = 3;
        g.add_task(m, &[]);
        let prog = TaskProgram::from_graph(g);
        let rt = Runtime::new(RuntimeConfig::with_workers(1).record_graph(true));
        prog.spawn_on(&rt, |_| Box::new(|| {}));
        rt.taskwait();
        let rec = rt.graph().unwrap();
        let n = rec.node(TaskId(0));
        assert_eq!(n.meta.cost, 50);
        assert_eq!(n.meta.criticality, Criticality::Critical);
        assert_eq!(n.meta.priority, 3);
    }
}
