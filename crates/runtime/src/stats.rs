//! Lightweight runtime counters.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Buckets of the retry histogram: index = failed attempts a task needed
/// before settling (0 = clean first run), last bucket clamps the tail.
pub const RETRY_HIST_BUCKETS: usize = 8;

// ------------------------------------------------------ striped counters

/// Pads its contents to two cache lines (the spatial-prefetcher pair on
/// x86), so neighbouring stripes never false-share.
#[repr(align(128))]
#[derive(Default, Debug)]
pub struct CachePadded<T>(pub T);

/// Default stripes per striped counter (the runtime-global counters).
/// Thread ids fold onto the stripes, so two workers only share a line
/// through a modulo collision.
pub const COUNTER_STRIPES: usize = 16;

/// Stripes for *per-job* counters. Jobs can be as short-lived as one
/// serving request, so their `JobState` must stay cheap to allocate and
/// zero: 4 stripes puts a job's six striped counters at ~3KB instead of
/// ~12KB, trading a higher collision probability only on counters that
/// a single job's (typically few) concurrent tasks touch.
pub const JOB_COUNTER_STRIPES: usize = 4;

static NEXT_STRIPE: AtomicU32 = AtomicU32::new(0);
thread_local! {
    static STRIPE: std::cell::Cell<u32> = const { std::cell::Cell::new(u32::MAX) };
}

/// This thread's stripe index (assigned round-robin on first use).
#[inline]
fn stripe_id() -> usize {
    STRIPE.with(|c| {
        let v = c.get();
        if v != u32::MAX {
            return v as usize;
        }
        let id = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES as u32;
        c.set(id);
        id as usize
    })
}

/// A monotonic counter split into per-thread cache-line-padded stripes:
/// `add` touches only the calling thread's line; `sum` (the cold read
/// path) walks all of them. `N` trades contention for footprint: the
/// long-lived runtime-global counters use the default, per-job counters
/// use [`JOB_COUNTER_STRIPES`].
#[derive(Debug)]
pub struct Striped64<const N: usize = COUNTER_STRIPES> {
    stripes: [CachePadded<AtomicU64>; N],
}

impl<const N: usize> Default for Striped64<N> {
    fn default() -> Self {
        Striped64 {
            stripes: std::array::from_fn(|_| CachePadded(AtomicU64::new(0))),
        }
    }
}

impl<const N: usize> Striped64<N> {
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_id() % N]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    pub fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A striped up/down gauge built from two monotonic halves, for counts
/// that must support a *reliable* is-it-zero check (quiescence). A
/// single striped signed counter cannot: a reader can catch a task's
/// decrement on one stripe but miss its earlier increment on another and
/// report a spurious zero.
///
/// Here both halves only grow, every `dec` is preceded (in
/// happens-before order) by its `inc`, and `read` loads the *decrements
/// first*: any dec it observes has an inc that is SeqCst-ordered before
/// it, hence before the later inc pass — so `read` can under-observe
/// decs (transiently reporting high) but never under-observe a matched
/// inc (never reporting a false zero). Tasks inc'd concurrently with the
/// read may be missed entirely, which is the pre-existing `taskwait`
/// contract for spawns racing the wait.
#[derive(Debug)]
pub struct StripedGauge<const N: usize = COUNTER_STRIPES> {
    incs: [CachePadded<AtomicU64>; N],
    decs: [CachePadded<AtomicU64>; N],
}

impl<const N: usize> Default for StripedGauge<N> {
    fn default() -> Self {
        StripedGauge {
            incs: std::array::from_fn(|_| CachePadded(AtomicU64::new(0))),
            decs: std::array::from_fn(|_| CachePadded(AtomicU64::new(0))),
        }
    }
}

impl<const N: usize> StripedGauge<N> {
    #[inline]
    pub fn inc(&self, n: u64) {
        self.incs[stripe_id() % N].0.fetch_add(n, Ordering::SeqCst);
    }

    #[inline]
    pub fn dec(&self, n: u64) {
        self.decs[stripe_id() % N].0.fetch_add(n, Ordering::SeqCst);
    }

    /// Current count. Never spuriously zero (see the type docs); may
    /// transiently read high.
    pub fn read(&self) -> u64 {
        let mut decs = 0u64;
        for d in &self.decs {
            decs += d.0.load(Ordering::SeqCst);
        }
        let mut incs = 0u64;
        for i in &self.incs {
            incs += i.0.load(Ordering::SeqCst);
        }
        incs.saturating_sub(decs)
    }
}

// -------------------------------------------------- contention report

/// Per-victim steal traffic: how often thieves found work on (or came
/// away empty from) one worker's deque.
#[derive(Clone, Copy, Debug, Default)]
pub struct VictimSteals {
    pub ok: u64,
    pub empty: u64,
}

impl VictimSteals {
    pub fn hit_rate(&self) -> f64 {
        let total = self.ok + self.empty;
        if total == 0 {
            0.0
        } else {
            self.ok as f64 / total as f64
        }
    }
}

/// Per-cluster steal and balance traffic under two-level scheduling,
/// attributed to the *thief's* cluster. A flat topology reports a single
/// entry covering the whole pool (all steals count as intra).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterSteals {
    /// Tasks claimed from deques inside the thief's own cluster.
    pub intra_ok: u64,
    /// Intra-cluster probes that found the victim bare.
    pub intra_empty: u64,
    /// Tasks this cluster's balancer pulled in from other clusters
    /// (remote injector drains + remote steal-half claims).
    pub inter_ok: u64,
    /// Balancer probes of remote queues that found nothing.
    pub inter_empty: u64,
    /// Tasks physically migrated across the cluster boundary by the
    /// balancer (the batched cross-cluster traffic volume).
    pub migrated: u64,
    /// External submissions and spill routed to this cluster's injector.
    pub injector_pushes: u64,
}

impl ClusterSteals {
    /// Fraction of intra-cluster steal probes that found work.
    pub fn intra_hit_rate(&self) -> f64 {
        let total = self.intra_ok + self.intra_empty;
        if total == 0 {
            0.0
        } else {
            self.intra_ok as f64 / total as f64
        }
    }

    /// Fraction of inter-cluster balance probes that found work.
    pub fn inter_hit_rate(&self) -> f64 {
        let total = self.inter_ok + self.inter_empty;
        if total == 0 {
            0.0
        } else {
            self.inter_ok as f64 / total as f64
        }
    }
}

/// Where the scheduler's cross-worker traffic actually went — the
/// attribution summary behind `trace_report --contention`.
#[derive(Clone, Debug, Default)]
pub struct ContentionReport {
    /// Indexed by victim worker.
    pub per_victim: Vec<VictimSteals>,
    /// Indexed by cluster (single entry when the topology is flat).
    pub per_cluster: Vec<ClusterSteals>,
    /// Ready tasks routed through the shared injector (vs. worker-local
    /// deques).
    pub injector_pushes: u64,
    /// Injector pushes that missed the lock-free ring and took the
    /// overflow lock.
    pub injector_overflow: u64,
    /// Total ready-task dispatches (spawn-ready + releases).
    pub dispatches: u64,
    /// Slab slots recycled into the freeing thread's own context.
    pub slab_local_frees: u64,
    /// Slab slots pushed onto a remote owner's sideband.
    pub slab_remote_frees: u64,
}

impl ContentionReport {
    /// Share of ready-task dispatches that crossed through the shared
    /// injector.
    pub fn injector_share(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.injector_pushes as f64 / self.dispatches as f64
        }
    }

    /// Share of slab frees that had to cross to another owner's sideband.
    pub fn remote_free_ratio(&self) -> f64 {
        let total = self.slab_local_frees + self.slab_remote_frees;
        if total == 0 {
            0.0
        } else {
            self.slab_remote_frees as f64 / total as f64
        }
    }
}

/// Monotonic counters maintained by the runtime. All relaxed: they are
/// diagnostics, not synchronisation.
#[derive(Default, Debug)]
pub struct RuntimeStats {
    /// Tasks submitted. Striped: bumped on every spawn, often from many
    /// workers at once.
    pub spawned: Striped64,
    /// Tasks completed. Striped: the completion path must only touch a
    /// local line.
    pub completed: Striped64,
    /// Dependency edges discovered. Striped: bumped per spawn.
    pub edges: Striped64,
    /// Tasks that were ready at submission (no pending predecessors).
    /// Striped: bumped per spawn.
    pub ready_at_spawn: Striped64,
    /// Tasks flagged critical at submission.
    pub critical_tasks: AtomicU64,
    /// Task attempts that panicked (injected or real; counts every
    /// attempt, so one task retried twice contributes two).
    pub panicked: AtomicU64,
    /// Re-executions scheduled by the retry policy.
    pub retried: AtomicU64,
    /// Tasks that settled as failed (panicked out of retries, or
    /// poisoned).
    pub failed_tasks: AtomicU64,
    /// Failed tasks that never ran: skipped due to an upstream poisoned
    /// region (subset of `failed_tasks`).
    pub poisoned_tasks: AtomicU64,
    /// Settled tasks bucketed by how many failed attempts they needed.
    pub retry_hist: [AtomicU64; RETRY_HIST_BUCKETS],
    /// Jobs accepted by `Runtime::submit`.
    pub jobs_submitted: AtomicU64,
    /// Jobs cancelled (explicitly or by `Runtime::drain`).
    pub jobs_cancelled: AtomicU64,
    /// Best-effort tasks dropped at the shed watermark.
    pub tasks_shed: AtomicU64,
    /// Tasks that settled as skipped because their job was cancelled
    /// (subset of `failed_tasks`).
    pub tasks_cancelled: AtomicU64,
    /// Blocking spawns silently dropped (job cancelled / runtime
    /// draining / task shed).
    pub tasks_discarded: AtomicU64,
    /// `try_spawn` reservations refused at an in-flight cap.
    pub admission_rejected: AtomicU64,
    /// Hedged duplicates dispatched for straggling idempotent tasks.
    pub tasks_hedged: AtomicU64,
    /// Jobs the deadline reaper found overdue (best-effort ones are also
    /// cancelled; guaranteed ones only get the miss mark).
    pub jobs_deadline_missed: AtomicU64,
}

impl RuntimeStats {
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut retry_hist = [0u64; RETRY_HIST_BUCKETS];
        for (out, c) in retry_hist.iter_mut().zip(&self.retry_hist) {
            *out = c.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            spawned: self.spawned.sum(),
            completed: self.completed.sum(),
            edges: self.edges.sum(),
            ready_at_spawn: self.ready_at_spawn.sum(),
            critical_tasks: self.critical_tasks.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            failed_tasks: self.failed_tasks.load(Ordering::Relaxed),
            poisoned_tasks: self.poisoned_tasks.load(Ordering::Relaxed),
            retry_hist,
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            tasks_shed: self.tasks_shed.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
            tasks_discarded: self.tasks_discarded.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            tasks_hedged: self.tasks_hedged.load(Ordering::Relaxed),
            jobs_deadline_missed: self.jobs_deadline_missed.load(Ordering::Relaxed),
            worker_deaths: 0,
            worker_respawns: 0,
            worker_stalls: 0,
            steals_ok: 0,
            steals_empty: 0,
            injector_overflow: 0,
            parks: 0,
            wakes: 0,
        }
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`RuntimeStats`], with the worker-pool fault
/// counters merged in by `Runtime::stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub spawned: u64,
    pub completed: u64,
    pub edges: u64,
    pub ready_at_spawn: u64,
    pub critical_tasks: u64,
    pub panicked: u64,
    pub retried: u64,
    pub failed_tasks: u64,
    pub poisoned_tasks: u64,
    pub retry_hist: [u64; RETRY_HIST_BUCKETS],
    /// Jobs accepted by `Runtime::submit`.
    pub jobs_submitted: u64,
    /// Jobs cancelled (explicitly or by `Runtime::drain`).
    pub jobs_cancelled: u64,
    /// Best-effort tasks dropped at the shed watermark.
    pub tasks_shed: u64,
    /// Tasks settled as skipped because their job was cancelled.
    pub tasks_cancelled: u64,
    /// Blocking spawns silently dropped (cancelled/draining/shed).
    pub tasks_discarded: u64,
    /// `try_spawn` reservations refused at an in-flight cap.
    pub admission_rejected: u64,
    /// Hedged duplicates dispatched for straggling idempotent tasks.
    pub tasks_hedged: u64,
    /// Jobs the deadline reaper found overdue (best-effort ones are also
    /// cancelled; guaranteed ones only get the miss mark).
    pub jobs_deadline_missed: u64,
    /// Worker threads that died (injected or real), from the watchdog.
    pub worker_deaths: u64,
    /// Replacement workers the watchdog spawned.
    pub worker_respawns: u64,
    /// Stall episodes the watchdog flagged (busy worker, frozen
    /// heartbeat).
    pub worker_stalls: u64,
    /// Successful steals from sibling deques (work-stealing policy),
    /// from the scheduler.
    pub steals_ok: u64,
    /// Full steal sweeps that found nothing, from the scheduler.
    pub steals_empty: u64,
    /// Injector pushes that missed the lock-free ring and took the
    /// overflow lock, from the scheduler.
    pub injector_overflow: u64,
    /// Times a worker parked on the idle condvar, from the pool.
    pub parks: u64,
    /// Condvar notifies actually issued by spawners/completers, from the
    /// pool.
    pub wakes: u64,
}

impl StatsSnapshot {
    /// Average dependency edges per task.
    pub fn edges_per_task(&self) -> f64 {
        if self.spawned == 0 {
            0.0
        } else {
            self.edges as f64 / self.spawned as f64
        }
    }

    /// Fraction of steal attempts that found work.
    pub fn steal_hit_rate(&self) -> f64 {
        let total = self.steals_ok + self.steals_empty;
        if total == 0 {
            0.0
        } else {
            self.steals_ok as f64 / total as f64
        }
    }

    /// Condvar wakes issued per completed task — the wake-storm
    /// attribution number. A dependency chain that parks/unparks a
    /// worker per link sits near 1.0; a healthy saturated pool sits
    /// near 0.
    pub fn wakes_per_task(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.wakes as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = RuntimeStats::default();
        s.spawned.add(1);
        s.spawned.add(1);
        s.edges.add(1);
        let snap = s.snapshot();
        assert_eq!(snap.spawned, 2);
        assert_eq!(snap.edges, 1);
        assert!((snap.edges_per_task() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn striped_counter_sums_across_threads() {
        let c = std::sync::Arc::new(Striped64::<COUNTER_STRIPES>::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.add(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 4000);
    }

    #[test]
    fn striped_gauge_never_reads_false_zero() {
        // Hammer inc-then-dec pairs from several threads while a reader
        // polls; the gauge may read high but the final read must be 0
        // and every dec'd pair must have had its inc observed.
        // The small per-job stripe width exercises the `% N` fold (the
        // round-robin thread-stripe ids exceed it).
        let g = std::sync::Arc::new(StripedGauge::<JOB_COUNTER_STRIPES>::default());
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..5000 {
                    g.inc(1);
                    g.dec(1);
                }
            }));
        }
        let reader = {
            let g = g.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    // read() returning u64 can never be "negative"; the
                    // invariant under test is that saturating_sub never
                    // actually saturates (decs never outrun their incs).
                    let _ = g.read();
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(g.read(), 0);
    }

    #[test]
    fn edges_per_task_zero_when_empty() {
        let snap = RuntimeStats::default().snapshot();
        assert_eq!(snap.edges_per_task(), 0.0);
    }

    #[test]
    fn retry_histogram_roundtrips() {
        let s = RuntimeStats::default();
        RuntimeStats::bump(&s.retry_hist[0]);
        RuntimeStats::bump(&s.retry_hist[0]);
        RuntimeStats::bump(&s.retry_hist[3]);
        let snap = s.snapshot();
        assert_eq!(snap.retry_hist[0], 2);
        assert_eq!(snap.retry_hist[3], 1);
        assert_eq!(snap.retry_hist[7], 0);
    }
}
