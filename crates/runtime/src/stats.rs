//! Lightweight runtime counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets of the retry histogram: index = failed attempts a task needed
/// before settling (0 = clean first run), last bucket clamps the tail.
pub const RETRY_HIST_BUCKETS: usize = 8;

/// Monotonic counters maintained by the runtime. All relaxed: they are
/// diagnostics, not synchronisation.
#[derive(Default, Debug)]
pub struct RuntimeStats {
    /// Tasks submitted.
    pub spawned: AtomicU64,
    /// Tasks completed.
    pub completed: AtomicU64,
    /// Dependency edges discovered.
    pub edges: AtomicU64,
    /// Tasks that were ready at submission (no pending predecessors).
    pub ready_at_spawn: AtomicU64,
    /// Tasks flagged critical at submission.
    pub critical_tasks: AtomicU64,
    /// Task attempts that panicked (injected or real; counts every
    /// attempt, so one task retried twice contributes two).
    pub panicked: AtomicU64,
    /// Re-executions scheduled by the retry policy.
    pub retried: AtomicU64,
    /// Tasks that settled as failed (panicked out of retries, or
    /// poisoned).
    pub failed_tasks: AtomicU64,
    /// Failed tasks that never ran: skipped due to an upstream poisoned
    /// region (subset of `failed_tasks`).
    pub poisoned_tasks: AtomicU64,
    /// Settled tasks bucketed by how many failed attempts they needed.
    pub retry_hist: [AtomicU64; RETRY_HIST_BUCKETS],
    /// Jobs accepted by `Runtime::submit`.
    pub jobs_submitted: AtomicU64,
    /// Jobs cancelled (explicitly or by `Runtime::drain`).
    pub jobs_cancelled: AtomicU64,
    /// Best-effort tasks dropped at the shed watermark.
    pub tasks_shed: AtomicU64,
    /// Tasks that settled as skipped because their job was cancelled
    /// (subset of `failed_tasks`).
    pub tasks_cancelled: AtomicU64,
    /// Blocking spawns silently dropped (job cancelled / runtime
    /// draining / task shed).
    pub tasks_discarded: AtomicU64,
    /// `try_spawn` reservations refused at an in-flight cap.
    pub admission_rejected: AtomicU64,
    /// Hedged duplicates dispatched for straggling idempotent tasks.
    pub tasks_hedged: AtomicU64,
    /// Jobs the deadline reaper found overdue (best-effort ones are also
    /// cancelled; guaranteed ones only get the miss mark).
    pub jobs_deadline_missed: AtomicU64,
}

impl RuntimeStats {
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut retry_hist = [0u64; RETRY_HIST_BUCKETS];
        for (out, c) in retry_hist.iter_mut().zip(&self.retry_hist) {
            *out = c.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            spawned: self.spawned.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            edges: self.edges.load(Ordering::Relaxed),
            ready_at_spawn: self.ready_at_spawn.load(Ordering::Relaxed),
            critical_tasks: self.critical_tasks.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            failed_tasks: self.failed_tasks.load(Ordering::Relaxed),
            poisoned_tasks: self.poisoned_tasks.load(Ordering::Relaxed),
            retry_hist,
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            tasks_shed: self.tasks_shed.load(Ordering::Relaxed),
            tasks_cancelled: self.tasks_cancelled.load(Ordering::Relaxed),
            tasks_discarded: self.tasks_discarded.load(Ordering::Relaxed),
            admission_rejected: self.admission_rejected.load(Ordering::Relaxed),
            tasks_hedged: self.tasks_hedged.load(Ordering::Relaxed),
            jobs_deadline_missed: self.jobs_deadline_missed.load(Ordering::Relaxed),
            worker_deaths: 0,
            worker_respawns: 0,
            worker_stalls: 0,
            steals_ok: 0,
            steals_empty: 0,
            injector_overflow: 0,
            parks: 0,
            wakes: 0,
        }
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`RuntimeStats`], with the worker-pool fault
/// counters merged in by `Runtime::stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub spawned: u64,
    pub completed: u64,
    pub edges: u64,
    pub ready_at_spawn: u64,
    pub critical_tasks: u64,
    pub panicked: u64,
    pub retried: u64,
    pub failed_tasks: u64,
    pub poisoned_tasks: u64,
    pub retry_hist: [u64; RETRY_HIST_BUCKETS],
    /// Jobs accepted by `Runtime::submit`.
    pub jobs_submitted: u64,
    /// Jobs cancelled (explicitly or by `Runtime::drain`).
    pub jobs_cancelled: u64,
    /// Best-effort tasks dropped at the shed watermark.
    pub tasks_shed: u64,
    /// Tasks settled as skipped because their job was cancelled.
    pub tasks_cancelled: u64,
    /// Blocking spawns silently dropped (cancelled/draining/shed).
    pub tasks_discarded: u64,
    /// `try_spawn` reservations refused at an in-flight cap.
    pub admission_rejected: u64,
    /// Hedged duplicates dispatched for straggling idempotent tasks.
    pub tasks_hedged: u64,
    /// Jobs the deadline reaper found overdue (best-effort ones are also
    /// cancelled; guaranteed ones only get the miss mark).
    pub jobs_deadline_missed: u64,
    /// Worker threads that died (injected or real), from the watchdog.
    pub worker_deaths: u64,
    /// Replacement workers the watchdog spawned.
    pub worker_respawns: u64,
    /// Stall episodes the watchdog flagged (busy worker, frozen
    /// heartbeat).
    pub worker_stalls: u64,
    /// Successful steals from sibling deques (work-stealing policy),
    /// from the scheduler.
    pub steals_ok: u64,
    /// Full steal sweeps that found nothing, from the scheduler.
    pub steals_empty: u64,
    /// Injector pushes that missed the lock-free ring and took the
    /// overflow lock, from the scheduler.
    pub injector_overflow: u64,
    /// Times a worker parked on the idle condvar, from the pool.
    pub parks: u64,
    /// Condvar notifies actually issued by spawners/completers, from the
    /// pool.
    pub wakes: u64,
}

impl StatsSnapshot {
    /// Average dependency edges per task.
    pub fn edges_per_task(&self) -> f64 {
        if self.spawned == 0 {
            0.0
        } else {
            self.edges as f64 / self.spawned as f64
        }
    }

    /// Fraction of steal attempts that found work.
    pub fn steal_hit_rate(&self) -> f64 {
        let total = self.steals_ok + self.steals_empty;
        if total == 0 {
            0.0
        } else {
            self.steals_ok as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = RuntimeStats::default();
        RuntimeStats::bump(&s.spawned);
        RuntimeStats::bump(&s.spawned);
        RuntimeStats::bump(&s.edges);
        let snap = s.snapshot();
        assert_eq!(snap.spawned, 2);
        assert_eq!(snap.edges, 1);
        assert!((snap.edges_per_task() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edges_per_task_zero_when_empty() {
        let snap = RuntimeStats::default().snapshot();
        assert_eq!(snap.edges_per_task(), 0.0);
    }

    #[test]
    fn retry_histogram_roundtrips() {
        let s = RuntimeStats::default();
        RuntimeStats::bump(&s.retry_hist[0]);
        RuntimeStats::bump(&s.retry_hist[0]);
        RuntimeStats::bump(&s.retry_hist[3]);
        let snap = s.snapshot();
        assert_eq!(snap.retry_hist[0], 2);
        assert_eq!(snap.retry_hist[3], 1);
        assert_eq!(snap.retry_hist[7], 0);
    }
}
