//! Lightweight runtime counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters maintained by the runtime. All relaxed: they are
/// diagnostics, not synchronisation.
#[derive(Default, Debug)]
pub struct RuntimeStats {
    /// Tasks submitted.
    pub spawned: AtomicU64,
    /// Tasks completed.
    pub completed: AtomicU64,
    /// Dependency edges discovered.
    pub edges: AtomicU64,
    /// Tasks that were ready at submission (no pending predecessors).
    pub ready_at_spawn: AtomicU64,
    /// Tasks flagged critical at submission.
    pub critical_tasks: AtomicU64,
    /// Task bodies that panicked.
    pub panicked: AtomicU64,
}

impl RuntimeStats {
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            spawned: self.spawned.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            edges: self.edges.load(Ordering::Relaxed),
            ready_at_spawn: self.ready_at_spawn.load(Ordering::Relaxed),
            critical_tasks: self.critical_tasks.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
        }
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub spawned: u64,
    pub completed: u64,
    pub edges: u64,
    pub ready_at_spawn: u64,
    pub critical_tasks: u64,
    pub panicked: u64,
}

impl StatsSnapshot {
    /// Average dependency edges per task.
    pub fn edges_per_task(&self) -> f64 {
        if self.spawned == 0 {
            0.0
        } else {
            self.edges as f64 / self.spawned as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = RuntimeStats::default();
        RuntimeStats::bump(&s.spawned);
        RuntimeStats::bump(&s.spawned);
        RuntimeStats::bump(&s.edges);
        let snap = s.snapshot();
        assert_eq!(snap.spawned, 2);
        assert_eq!(snap.edges, 1);
        assert!((snap.edges_per_task() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edges_per_task_zero_when_empty() {
        let snap = RuntimeStats::default().snapshot();
        assert_eq!(snap.edges_per_task(), 0.0);
    }
}
