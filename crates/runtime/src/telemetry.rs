//! Live telemetry plane: lock-free, always-available self-measurement
//! for the multi-tenant serving runtime.
//!
//! Layout follows the striped-counter discipline of [`crate::stats`]:
//! each worker owns a cache-padded cell of log-bucketed histograms
//! (queue delay = admission→first dispatch, task body, job end-to-end)
//! and records into it with relaxed atomics — no locks, no CAS loops,
//! no cross-worker cache-line traffic on the hot path. Aggregation
//! happens only at snapshot time, when the cells are merged
//! (histogram merge is elementwise add, hence associative) and joined
//! with the runtime's existing always-on counters into a
//! [`TelemetrySnapshot`] carrying exact per-tenant breakdowns.
//!
//! The plane is off by default ([`RuntimeConfig::telemetry`]
//! (crate::RuntimeConfig::telemetry)); a disabled runtime pays one
//! `Option` discriminant check per hook site, preserving the PR 4
//! disabled-is-free budget.
//!
//! A background sampler thread (spawned with the plane) turns the
//! snapshot stream into periodic [`TelemetryDelta`]s and runs the
//! [`TriggerRules`] over them; an [`Anomaly`] asks the
//! [flight recorder](crate::flight) for a post-mortem dump.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::job::{JobId, JobMetrics};
use crate::stats::{CachePadded, StatsSnapshot};

/// Number of log2 buckets. Bucket 0 holds values `0..=1`; bucket `k`
/// (k ≥ 1) holds `2^k ..= 2^(k+1)-1`; bucket 63 is open-ended.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for a value: the position of its highest set bit.
/// `0` and `1` share bucket 0 so the zero value needs no special case.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    63 - (v | 1).leading_zeros() as usize
}

/// Inclusive value range covered by a bucket.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < HIST_BUCKETS);
    if i == 0 {
        (0, 1)
    } else if i == 63 {
        (1 << 63, u64::MAX)
    } else {
        (1 << i, (1 << (i + 1)) - 1)
    }
}

/// Lock-free log-bucketed (HDR-style, power-of-two buckets) histogram.
/// `record` is two relaxed `fetch_add`s; there is no other hot-path
/// cost. Bucket bounds are exact powers of two, so a quantile read is
/// accurate to within 2x — enough to tell 10µs from 10ms, which is what
/// trigger rules need.
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Exact running sum of recorded values (for true means).
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            out.buckets[i] = b.load(Ordering::Relaxed);
        }
        out.sum = self.sum.load(Ordering::Relaxed);
        out
    }
}

/// An owned, mergeable point-in-time copy of a [`LogHistogram`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl std::fmt::Debug for HistSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HistSnapshot {{ count: {}, sum: {}",
            self.count(),
            self.sum
        )?;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                let (lo, hi) = bucket_bounds(i);
                write!(f, ", [{lo}..={hi}]: {n}")?;
            }
        }
        write!(f, " }}")
    }
}

impl HistSnapshot {
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True arithmetic mean of recorded values (the sum is exact even
    /// though the buckets are coarse).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Elementwise add — associative and commutative, so per-worker
    /// cells can be merged in any order.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Per-bucket saturating difference against an earlier snapshot of
    /// the same histogram (for sampler deltas).
    pub fn since(&self, prev: &HistSnapshot) -> HistSnapshot {
        let mut out = *self;
        for (a, b) in out.buckets.iter_mut().zip(prev.buckets.iter()) {
            *a = a.saturating_sub(*b);
        }
        out.sum = self.sum.saturating_sub(prev.sum);
        out
    }
}

/// One worker's private telemetry cell. Cache-padded so neighbouring
/// workers never share a line; external (non-worker) threads fall back
/// to a shared trailing cell.
#[derive(Default)]
struct WorkerCell {
    queue_delay: LogHistogram,
    body: LogHistogram,
    job_e2e: LogHistogram,
}

/// The lock-free metrics plane: one [`WorkerCell`] per worker plus one
/// for external threads. Held as `Option<Arc<_>>` by the runtime —
/// `None` (telemetry disabled) makes every hook a single branch.
pub struct TelemetryPlane {
    workers: usize,
    cells: Vec<CachePadded<WorkerCell>>,
}

impl TelemetryPlane {
    pub(crate) fn new(workers: usize) -> Self {
        TelemetryPlane {
            workers,
            cells: (0..=workers)
                .map(|_| CachePadded(WorkerCell::default()))
                .collect(),
        }
    }

    #[inline]
    fn cell(&self) -> &WorkerCell {
        let idx = match crate::pool::current_worker() {
            Some(w) if w < self.workers => w,
            _ => self.workers,
        };
        &self.cells[idx].0
    }

    /// Admission→first-dispatch latency of a job task.
    #[inline]
    pub(crate) fn record_queue_delay(&self, ns: u64) {
        self.cell().queue_delay.record(ns);
    }

    /// Task body execution time (successful attempts).
    #[inline]
    pub(crate) fn record_body(&self, ns: u64) {
        self.cell().body.record(ns);
    }

    /// Job end-to-end: submit → last in-flight task settled.
    #[inline]
    pub(crate) fn record_job_e2e(&self, ns: u64) {
        self.cell().job_e2e.record(ns);
    }

    pub(crate) fn merged(&self) -> (HistSnapshot, HistSnapshot, HistSnapshot) {
        let mut qd = HistSnapshot::default();
        let mut body = HistSnapshot::default();
        let mut e2e = HistSnapshot::default();
        for cell in &self.cells {
            qd.merge(&cell.0.queue_delay.snapshot());
            body.merge(&cell.0.body.snapshot());
            e2e.merge(&cell.0.job_e2e.snapshot());
        }
        (qd, body, e2e)
    }
}

/// Per-tenant histogram pair, allocated per job when the plane is on.
/// Recording threads hit it alongside the plane's worker cell; both are
/// relaxed adds on lines no reader touches until snapshot time.
#[derive(Default)]
pub struct JobTelemetry {
    queue_delay: LogHistogram,
    body: LogHistogram,
}

impl JobTelemetry {
    #[inline]
    pub(crate) fn record_queue_delay(&self, ns: u64) {
        self.queue_delay.record(ns);
    }

    #[inline]
    pub(crate) fn record_body(&self, ns: u64) {
        self.body.record(ns);
    }

    /// `(queue delay, body)` snapshots.
    pub(crate) fn snapshots(&self) -> (HistSnapshot, HistSnapshot) {
        (self.queue_delay.snapshot(), self.body.snapshot())
    }
}

/// One tenant's slice of a [`TelemetrySnapshot`].
#[derive(Clone, Debug)]
pub struct TenantTelemetry {
    pub id: JobId,
    pub label: String,
    pub qos: crate::scheduler::QosClass,
    pub metrics: JobMetrics,
    pub shed: u64,
    pub deadline_missed: bool,
    pub queue_delay: HistSnapshot,
    pub body: HistSnapshot,
}

/// On-demand aggregation of the whole plane: the runtime's always-on
/// counters, the merged global histograms, the overload controller's
/// state, the slab's local/remote free split, and one
/// [`TenantTelemetry`] per live job.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// Nanoseconds since the runtime was built.
    pub at_ns: u64,
    pub workers: usize,
    pub alive_workers: usize,
    pub stats: StatsSnapshot,
    pub slab_local_frees: u64,
    pub slab_remote_frees: u64,
    pub shed_engaged: bool,
    pub shed_delay: Duration,
    /// (engaged, recovered) transition counts of the shed controller.
    pub shed_transitions: (u64, u64),
    /// Post-mortem dumps the flight recorder has captured so far.
    pub flight_dumps: u64,
    pub queue_delay: HistSnapshot,
    pub body: HistSnapshot,
    pub job_e2e: HistSnapshot,
    pub tenants: Vec<TenantTelemetry>,
    /// Per-cluster steal/balance counters (one entry per cluster in the
    /// pool's [`crate::topology::Topology`]; a single entry under the
    /// default flat topology).
    pub per_cluster: Vec<crate::stats::ClusterSteals>,
}

impl TelemetrySnapshot {
    /// Share of free() calls that came from a non-owning worker.
    pub fn slab_remote_free_ratio(&self) -> f64 {
        let total = self.slab_local_frees + self.slab_remote_frees;
        if total == 0 {
            0.0
        } else {
            self.slab_remote_frees as f64 / total as f64
        }
    }

    /// Tasks shed as a fraction of admission attempts.
    pub fn shed_rate(&self) -> f64 {
        let attempts = self.stats.spawned + self.stats.tasks_shed;
        if attempts == 0 {
            0.0
        } else {
            self.stats.tasks_shed as f64 / attempts as f64
        }
    }
}

/// One sampler tick: counter movement since the previous tick plus any
/// anomalies the [`TriggerRules`] fired on it.
#[derive(Clone, Debug)]
pub struct TelemetryDelta {
    pub seq: u64,
    pub interval_ns: u64,
    pub spawned: u64,
    pub completed: u64,
    pub shed: u64,
    pub wakes: u64,
    pub steals_ok: u64,
    pub steals_empty: u64,
    /// Queue-delay histogram movement over the tick.
    pub queue_delay: HistSnapshot,
    pub anomalies: Vec<Anomaly>,
}

/// An execution-health anomaly detected from one sampler delta.
#[derive(Clone, Debug, PartialEq)]
pub enum Anomaly {
    /// Tick-local queue-delay p99 exceeded the SLO.
    P99OverSlo { p99: Duration, slo: Duration },
    /// Admission control rejected a large share of this tick's arrivals.
    ShedSpike { rate_permille: u64 },
    /// Wakes ≈ completed tasks: every task is paying a futex wake.
    WakeStorm { wakes: u64, tasks: u64 },
    /// Steal sweeps overwhelmingly find empty deques while work exists.
    DequeStarvation { empty: u64, ok: u64 },
}

impl Anomaly {
    pub fn label(&self) -> &'static str {
        match self {
            Anomaly::P99OverSlo { .. } => "p99-over-slo",
            Anomaly::ShedSpike { .. } => "shed-spike",
            Anomaly::WakeStorm { .. } => "wake-storm",
            Anomaly::DequeStarvation { .. } => "deque-starvation",
        }
    }
}

/// Thresholds the sampler applies to each delta. Pure data; detection
/// itself is the pure function [`detect`], so rules are unit-testable
/// without a running sampler.
#[derive(Clone, Debug)]
pub struct TriggerRules {
    /// Queue-delay p99 SLO (defaults to the shed controller's delay
    /// budget when overload protection is configured).
    pub p99_slo: Option<Duration>,
    /// Shed fraction of a tick's arrivals that counts as a spike.
    pub shed_spike: f64,
    /// `wakes >= ratio * completed` is a wake storm.
    pub wake_storm_ratio: f64,
    /// Empty steal sweeps per successful steal that count as
    /// starvation.
    pub starvation_miss_factor: u64,
    /// Ignore ticks that moved fewer tasks than this (idle runtimes
    /// trip no rules).
    pub min_tasks: u64,
}

impl Default for TriggerRules {
    fn default() -> Self {
        TriggerRules {
            p99_slo: None,
            shed_spike: 0.5,
            wake_storm_ratio: 0.9,
            starvation_miss_factor: 8,
            min_tasks: 64,
        }
    }
}

/// Apply `rules` to the movement between two snapshots of the same
/// runtime. Deterministic: same snapshots, same anomalies.
pub fn detect(
    prev: &TelemetrySnapshot,
    cur: &TelemetrySnapshot,
    rules: &TriggerRules,
) -> Vec<Anomaly> {
    let mut out = Vec::new();
    let completed = cur.stats.completed.saturating_sub(prev.stats.completed);
    let spawned = cur.stats.spawned.saturating_sub(prev.stats.spawned);
    let shed = cur.stats.tasks_shed.saturating_sub(prev.stats.tasks_shed);
    let wakes = cur.stats.wakes.saturating_sub(prev.stats.wakes);
    let ok = cur.stats.steals_ok.saturating_sub(prev.stats.steals_ok);
    let empty = cur
        .stats
        .steals_empty
        .saturating_sub(prev.stats.steals_empty);
    let qd = cur.queue_delay.since(&prev.queue_delay);

    if let Some(slo) = rules.p99_slo {
        if qd.count() >= rules.min_tasks {
            let p99 = Duration::from_nanos(qd.p99());
            if p99 > slo {
                out.push(Anomaly::P99OverSlo { p99, slo });
            }
        }
    }
    let arrivals = spawned + shed;
    if arrivals >= rules.min_tasks && shed as f64 > rules.shed_spike * arrivals as f64 {
        out.push(Anomaly::ShedSpike {
            rate_permille: shed * 1000 / arrivals,
        });
    }
    if completed >= rules.min_tasks && wakes as f64 >= rules.wake_storm_ratio * completed as f64 {
        out.push(Anomaly::WakeStorm {
            wakes,
            tasks: completed,
        });
    }
    if completed >= rules.min_tasks && empty > rules.starvation_miss_factor * (ok + 1) {
        out.push(Anomaly::DequeStarvation { empty, ok });
    }
    out
}

/// Sampler coordination block, shared between the runtime handle and
/// the sampler thread. Mirrors the reaper's stop/notify/join shape.
pub(crate) struct SamplerShared {
    pub(crate) stop: std::sync::atomic::AtomicBool,
    pub(crate) lock: std::sync::Mutex<()>,
    pub(crate) cv: std::sync::Condvar,
    pub(crate) deltas: std::sync::Mutex<std::collections::VecDeque<TelemetryDelta>>,
    pub(crate) anomalies: AtomicU64,
}

/// Sampler tick period. Short enough that a chaos campaign sees many
/// ticks; long enough that an idle service burns no measurable CPU.
pub(crate) const SAMPLE_INTERVAL: Duration = Duration::from_millis(5);
/// Bounded delta history: old ticks fall off the front.
pub(crate) const DELTA_KEEP: usize = 128;

impl SamplerShared {
    pub(crate) fn new() -> Self {
        SamplerShared {
            stop: std::sync::atomic::AtomicBool::new(false),
            lock: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
            deltas: std::sync::Mutex::new(std::collections::VecDeque::new()),
            anomalies: AtomicU64::new(0),
        }
    }

    pub(crate) fn push_delta(&self, delta: TelemetryDelta) {
        self.anomalies
            .fetch_add(delta.anomalies.len() as u64, Ordering::Relaxed);
        let mut q = self.deltas.lock().unwrap();
        if q.len() >= DELTA_KEEP {
            q.pop_front();
        }
        q.push_back(delta);
    }

    pub(crate) fn take_deltas(&self) -> Vec<TelemetryDelta> {
        self.deltas.lock().unwrap().drain(..).collect()
    }

    pub(crate) fn anomaly_count(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — the workspace's no-dependency seeded generator.
    struct SplitMix64(u64);
    impl SplitMix64 {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        let mut expect_lo = 0u64;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(
                lo,
                expect_lo,
                "bucket {i} starts where {} ended",
                i.wrapping_sub(1)
            );
            assert!(hi >= lo);
            expect_lo = hi.wrapping_add(1);
        }
        assert_eq!(expect_lo, 0, "last bucket ends at u64::MAX");
    }

    /// Property loop: every recorded value lands in a bucket whose
    /// bounds contain it, and the quantile of a single-value histogram
    /// is an upper bound for that value.
    #[test]
    fn recorded_values_stay_within_their_bucket() {
        let mut rng = SplitMix64(0x5eed_0009);
        for _ in 0..4096 {
            // Bias toward interesting magnitudes: raw 64-bit, small,
            // and power-of-two neighborhoods.
            let raw = rng.next();
            let v = match raw % 4 {
                0 => raw,
                1 => raw % 1024,
                2 => 1u64 << (raw % 64),
                _ => (1u64 << (raw % 63)).wrapping_sub(raw % 3),
            };
            let i = bucket_of(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (lo..=hi).contains(&v),
                "value {v} fell in bucket {i} [{lo}..={hi}]"
            );
            let h = LogHistogram::default();
            h.record(v);
            let snap = h.snapshot();
            assert_eq!(snap.count(), 1);
            assert_eq!(snap.sum, v);
            assert!(snap.quantile(1.0) >= v, "quantile upper-bounds the value");
            assert!(snap.p99() >= v);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut rng = SplitMix64(0xfeed_0009);
        for _ in 0..256 {
            let mk = |rng: &mut SplitMix64| {
                let h = LogHistogram::default();
                for _ in 0..(rng.next() % 32) {
                    h.record(rng.next() % (1 << (rng.next() % 40)).max(1));
                }
                h.snapshot()
            };
            let (a, b, c) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
            // (a + b) + c
            let mut ab = a;
            ab.merge(&b);
            let mut ab_c = ab;
            ab_c.merge(&c);
            // a + (b + c)
            let mut bc = b;
            bc.merge(&c);
            let mut a_bc = a;
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "merge is associative");
            // b + a == a + b
            let mut ba = b;
            ba.merge(&a);
            assert_eq!(ab, ba, "merge is commutative");
            assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
            assert_eq!(ab_c.sum, a.sum + b.sum + c.sum);
        }
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = LogHistogram::default();
        for _ in 0..90 {
            h.record(100); // bucket [64..=127]
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [524288..=1048575]
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 127);
        assert_eq!(s.quantile(0.90), 127);
        assert_eq!(s.p99(), 1048575);
        assert_eq!(s.mean(), (90 * 100 + 10 * 1_000_000) / 100);
        assert_eq!(s.quantile(1.0), 1048575);
    }

    fn base_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            at_ns: 0,
            workers: 4,
            alive_workers: 4,
            stats: StatsSnapshot::default(),
            slab_local_frees: 0,
            slab_remote_frees: 0,
            shed_engaged: false,
            shed_delay: Duration::ZERO,
            shed_transitions: (0, 0),
            flight_dumps: 0,
            queue_delay: HistSnapshot::default(),
            body: HistSnapshot::default(),
            job_e2e: HistSnapshot::default(),
            tenants: Vec::new(),
            per_cluster: Vec::new(),
        }
    }

    #[test]
    fn trigger_rules_fire_on_their_signatures() {
        let rules = TriggerRules {
            p99_slo: Some(Duration::from_micros(100)),
            ..TriggerRules::default()
        };
        let prev = base_snapshot();

        // Wake storm: wakes ≈ completed.
        let mut cur = base_snapshot();
        cur.stats.completed = 1000;
        cur.stats.spawned = 1000;
        cur.stats.wakes = 950;
        let found = detect(&prev, &cur, &rules);
        assert!(matches!(
            found.as_slice(),
            [Anomaly::WakeStorm {
                wakes: 950,
                tasks: 1000
            }]
        ));

        // Shed spike: more than half the arrivals rejected.
        let mut cur = base_snapshot();
        cur.stats.spawned = 100;
        cur.stats.tasks_shed = 200;
        let found = detect(&prev, &cur, &rules);
        assert_eq!(found.len(), 1);
        assert!(matches!(
            found[0],
            Anomaly::ShedSpike { rate_permille: 666 }
        ));

        // Deque starvation: empty sweeps dwarf hits.
        let mut cur = base_snapshot();
        cur.stats.completed = 1000;
        cur.stats.steals_ok = 5;
        cur.stats.steals_empty = 100;
        let found = detect(&prev, &cur, &rules);
        assert!(matches!(
            found.as_slice(),
            [Anomaly::DequeStarvation { empty: 100, ok: 5 }]
        ));

        // p99 over SLO: enough samples in a slow bucket.
        let mut cur = base_snapshot();
        for _ in 0..64 {
            cur.queue_delay.buckets[bucket_of(1_000_000)] += 1; // ~1ms
        }
        let found = detect(&prev, &cur, &rules);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].label(), "p99-over-slo");

        // Quiet tick: nothing fires.
        let cur = base_snapshot();
        assert!(detect(&prev, &cur, &rules).is_empty());
    }

    #[test]
    fn detect_ignores_small_ticks() {
        let rules = TriggerRules::default();
        let prev = base_snapshot();
        let mut cur = base_snapshot();
        cur.stats.completed = 10;
        cur.stats.wakes = 10; // 100% wakes/task, but only 10 tasks
        assert!(detect(&prev, &cur, &rules).is_empty());
    }

    #[test]
    fn hist_since_is_per_bucket_subtraction() {
        let h = LogHistogram::default();
        h.record(10);
        h.record(10);
        let early = h.snapshot();
        h.record(10);
        h.record(5000);
        let late = h.snapshot();
        let d = late.since(&early);
        assert_eq!(d.count(), 2);
        assert_eq!(d.buckets[bucket_of(10)], 1);
        assert_eq!(d.buckets[bucket_of(5000)], 1);
        assert_eq!(d.sum, 10 + 5000);
    }
}
