//! Ready-task scheduling policies.
//!
//! The runtime's ready pool is pluggable, because the paper's point is
//! precisely that *scheduling policy* is a first-class architectural
//! concern.  Policies:
//!
//! * [`SchedulerPolicy::Fifo`] — one global FIFO (the classic centralised
//!   queue; the baseline Carbon-style hardware queue would accelerate).
//! * [`SchedulerPolicy::Lifo`] — one global LIFO stack (depth-first).
//! * [`SchedulerPolicy::WorkStealing`] — per-worker steal-half deques +
//!   a lock-free bounded injector (see [`crate::deque`]), Cilk/Nanos
//!   style. The default, and the only fully lock-free hot path: thieves
//!   migrate up to half a victim's queue per claim, and worker-local
//!   spawns take the owner's own deque, so the injector only carries
//!   external submissions and spill.
//!   Tasks carrying an explicit priority go to a small overflow heap
//!   that workers consult only on steal-miss, so the priority machinery
//!   costs nothing while ordinary work is flowing.
//! * [`SchedulerPolicy::Priority`] — a global binary heap on task priority
//!   (ties broken FIFO).
//! * [`SchedulerPolicy::CriticalityAware`] — CATS-like: critical tasks go
//!   to a dedicated queue served preferentially by the designated "fast"
//!   workers; non-critical tasks are served by the rest.
//!
//! The legacy global policies (Fifo/Lifo/Priority) keep their exact
//! ordering semantics behind one mutex each — they exist to *study*
//! centralised scheduling, not to win benchmarks.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::deque::{DequeStealer, Injector, Steal, WorkerDeque};
use crate::stats::VictimSteals;
use crate::task::{ExecBody, TaskId};
use crate::trace::{TraceEventKind, Tracer, NO_TASK};

/// Ring capacity of the shared injectors. Bursts beyond this spill to a
/// mutex-protected overflow list (correct, slower) — sized so that only
/// pathological spawn storms ever reach the spill.
const INJECTOR_RING: usize = 1 << 15;

/// Sentinel deadline for tasks whose job carries none: sorts after every
/// real deadline, so plain-priority ordering is unchanged.
pub const NO_DEADLINE: u64 = u64::MAX;

/// A deadline within this many nanoseconds of now counts as *urgent*:
/// such tasks are routed to the overflow heap at push time and the heap
/// is consulted *before* the injector at pop time. Tasks whose deadline
/// is comfortably far ride the ordinary lock-free path — the EDF
/// machinery costs nothing until a deadline is actually at risk.
pub const EDF_URGENT_WINDOW_NS: u64 = 5_000_000;

/// Per-worker deque capacity; overflow from a completion burst goes to
/// the shared injector.
pub const WORKER_DEQUE_CAP: usize = 1 << 13;

/// Per-victim steal counters are kept in a fixed-size table (indexed
/// `victim % MAX_TRACKED_VICTIMS`) so `ReadyQueues` needs no worker
/// count at construction; pools larger than this alias counters, which
/// only blurs the attribution, never the totals.
pub const MAX_TRACKED_VICTIMS: usize = 64;

/// Atomic cell of the per-victim steal table.
#[derive(Default)]
struct VictimCell {
    ok: AtomicU64,
    empty: AtomicU64,
}

/// Scheduling policy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    Fifo,
    Lifo,
    #[default]
    WorkStealing,
    Priority,
    /// `fast_workers` = number of workers that prefer the critical queue.
    CriticalityAware {
        fast_workers: usize,
    },
}

/// Per-job quality-of-service class, consumed by the job layer's
/// admission path and by the scheduler's routing decision:
///
/// * [`QosClass::Guaranteed`] tasks are always admitted (subject only to
///   the configured in-flight caps) and keep their computed criticality.
/// * [`QosClass::BestEffort`] tasks are load-shed once the runtime's
///   global in-flight count reaches the configured shed watermark, and
///   are always scheduled as non-critical — under
///   [`SchedulerPolicy::CriticalityAware`] they are served by the slow
///   workers and never displace guaranteed work from the fast ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum QosClass {
    #[default]
    Guaranteed,
    BestEffort,
}

impl QosClass {
    /// True when tasks of this class may be dropped under pressure.
    pub fn sheddable(&self) -> bool {
        matches!(self, QosClass::BestEffort)
    }
}

/// A task that is ready to run, together with everything the scheduler
/// needs to order it.
pub struct ReadyTask {
    pub id: TaskId,
    /// Slab slot of the task's runtime bookkeeping (see
    /// [`crate::task::TaskSlab`]); echoed back on completion.
    pub slot: u32,
    /// Slot generation at enqueue time (0 when not tracked) — lets trace
    /// consumers tell retry attempts apart from slab-slot reuse.
    pub gen: u64,
    pub priority: i32,
    pub critical: bool,
    /// Absolute deadline in nanoseconds since the runtime epoch
    /// ([`NO_DEADLINE`] when the owning job has none). Breaks priority
    /// ties earliest-deadline-first in the overflow heap and makes
    /// near-deadline tasks jump the injector.
    pub deadline_ns: u64,
    pub seq: u64,
    pub body: ExecBody,
}

impl std::fmt::Debug for ReadyTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadyTask")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("critical", &self.critical)
            .finish()
    }
}

/// Heap ordering wrapper: max priority first, then earliest deadline,
/// then earliest submission. Tasks without a deadline carry
/// [`NO_DEADLINE`], so the deadline tie-break is inert for them and the
/// pre-deadline priority semantics are unchanged.
struct PrioEntry(ReadyTask);

impl PartialEq for PrioEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.priority == other.0.priority
            && self.0.deadline_ns == other.0.deadline_ns
            && self.0.seq == other.0.seq
    }
}
impl Eq for PrioEntry {}
impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .priority
            .cmp(&other.0.priority)
            .then(other.0.deadline_ns.cmp(&self.0.deadline_ns))
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

/// Global scheduling structures (per-worker deques live in the pool).
pub struct ReadyQueues {
    policy: SchedulerPolicy,
    injector: Injector<ReadyTask>,
    critical: Injector<ReadyTask>,
    /// Work-stealing overflow for explicitly prioritised tasks,
    /// consulted only on steal-miss.
    overflow: Mutex<BinaryHeap<PrioEntry>>,
    overflow_len: AtomicUsize,
    /// Approximate earliest deadline sitting in the overflow heap
    /// (`NO_DEADLINE` when none): `fetch_min` on push, reset only when
    /// the heap empties. May lag the heap (a stale *early* value just
    /// causes one spurious overflow poll — work-conserving either way).
    overflow_min_deadline: AtomicU64,
    /// Wall-clock origin for `deadline_ns` values; shared with the
    /// runtime so job deadlines and scheduler urgency agree.
    epoch: Instant,
    fifo: Mutex<VecDeque<ReadyTask>>,
    lifo: Mutex<Vec<ReadyTask>>,
    heap: Mutex<BinaryHeap<PrioEntry>>,
    seq: AtomicU64,
    /// Successful steals from sibling deques.
    steals_ok: AtomicU64,
    /// Full steal sweeps that found nothing (only counted when there is
    /// more than one worker to sweep).
    steals_empty: AtomicU64,
    /// Per-victim steal outcomes: `ok` counts claims satisfied from that
    /// victim's deque, `empty` counts probes that found it bare. Feeds
    /// the contention report's hit-rate table.
    victim_steals: Box<[VictimCell]>,
    tracer: Option<Arc<Tracer>>,
}

impl ReadyQueues {
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self::with_tracer(policy, None, Instant::now())
    }

    /// `epoch` is the origin against which `ReadyTask::deadline_ns` is
    /// measured; the runtime passes its own so both sides agree.
    pub fn with_tracer(
        policy: SchedulerPolicy,
        tracer: Option<Arc<Tracer>>,
        epoch: Instant,
    ) -> Self {
        ReadyQueues {
            policy,
            injector: Injector::new(INJECTOR_RING),
            critical: Injector::new(INJECTOR_RING),
            overflow: Mutex::new(BinaryHeap::new()),
            overflow_len: AtomicUsize::new(0),
            overflow_min_deadline: AtomicU64::new(NO_DEADLINE),
            epoch,
            fifo: Mutex::new(VecDeque::new()),
            lifo: Mutex::new(Vec::new()),
            heap: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            steals_ok: AtomicU64::new(0),
            steals_empty: AtomicU64::new(0),
            victim_steals: (0..MAX_TRACKED_VICTIMS)
                .map(|_| VictimCell::default())
                .collect(),
            tracer,
        }
    }

    /// `(steals_ok, steals_empty, injector_overflow)` — always-on relaxed
    /// counters, merged into `StatsSnapshot`.
    pub fn contention_counters(&self) -> (u64, u64, u64) {
        (
            self.steals_ok.load(Ordering::Relaxed),
            self.steals_empty.load(Ordering::Relaxed),
            self.injector.overflow_events() + self.critical.overflow_events(),
        )
    }

    /// Per-victim steal hit/miss table for the first `n` workers (counts
    /// alias above [`MAX_TRACKED_VICTIMS`]).
    pub fn per_victim_steals(&self, n: usize) -> Vec<VictimSteals> {
        self.victim_steals
            .iter()
            .take(n.min(MAX_TRACKED_VICTIMS))
            .map(|c| VictimSteals {
                ok: c.ok.load(Ordering::Relaxed),
                empty: c.empty.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// `(pushes, overflow_events)` across the shared injectors — the
    /// contention report's "how much traffic missed the local path"
    /// signal.
    pub fn injector_traffic(&self) -> (u64, u64) {
        (
            self.injector.push_events() + self.critical.push_events(),
            self.injector.overflow_events() + self.critical.overflow_events(),
        )
    }

    /// Worker-only emission: scheduler events from unbound (external)
    /// threads are skipped — a ready-at-spawn task pushed from the
    /// spawning thread is already implied by its Spawn record (ready
    /// bit), and steals/pops only ever happen on workers. This keeps the
    /// external spawn hot path at one traced event per task.
    #[inline]
    fn trace(&self, kind: TraceEventKind, task: TaskId, slot: u32, gen: u64, arg: u64) {
        if let Some(t) = &self.tracer {
            t.emit_from_worker(kind, task, slot, gen, arg);
        }
    }

    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Stamp a ready task with a global submission sequence number.
    /// Only the policies that order on `seq` pay for the shared counter.
    pub fn stamp(&self, mut t: ReadyTask) -> ReadyTask {
        t.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        t
    }

    /// Nanoseconds elapsed since the runtime epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_overflow(&self, t: ReadyTask) {
        if t.deadline_ns != NO_DEADLINE {
            self.overflow_min_deadline
                .fetch_min(t.deadline_ns, Ordering::AcqRel);
        }
        let mut heap = self.overflow.lock();
        heap.push(PrioEntry(self.stamp(t)));
        self.overflow_len.store(heap.len(), Ordering::Release);
    }

    /// Pop the overflow heap, keeping `overflow_len` and the approximate
    /// min-deadline in sync. The min-deadline is only *reset* when the
    /// heap empties: between pops it may be stale-early, which costs at
    /// most a wasted poll.
    fn pop_overflow(&self) -> Option<ReadyTask> {
        let mut heap = self.overflow.lock();
        let t = heap.pop().map(|e| e.0);
        self.overflow_len.store(heap.len(), Ordering::Release);
        if heap.is_empty() {
            self.overflow_min_deadline
                .store(NO_DEADLINE, Ordering::Release);
        }
        t
    }

    /// True when the overflow heap (probably) holds a task whose deadline
    /// falls inside the urgency window — one relaxed load on the hot
    /// path when the heap is empty.
    #[inline]
    fn overflow_is_urgent(&self) -> bool {
        if self.overflow_len.load(Ordering::Acquire) == 0 {
            return false;
        }
        let min = self.overflow_min_deadline.load(Ordering::Acquire);
        min != NO_DEADLINE && min <= self.now_ns().saturating_add(EDF_URGENT_WINDOW_NS)
    }

    /// Push a ready task to the global structures. `local` is the current
    /// worker's own deque when the push happens on a worker thread (used
    /// by the work-stealing policy for locality).
    pub fn push(&self, t: ReadyTask, local: Option<&WorkerDeque<ReadyTask>>) {
        // Enqueue events are emitted *before* the push: once the task is
        // visible another worker can start it, and its `start` must not
        // precede the enqueue record in the trace.
        let (id, slot, gen) = (t.id, t.slot, t.gen);
        match self.policy {
            SchedulerPolicy::Fifo => {
                self.trace(TraceEventKind::EnqueueGlobal, id, slot, gen, 0);
                self.fifo.lock().push_back(self.stamp(t))
            }
            SchedulerPolicy::Lifo => {
                self.trace(TraceEventKind::EnqueueGlobal, id, slot, gen, 0);
                self.lifo.lock().push(self.stamp(t))
            }
            SchedulerPolicy::WorkStealing => {
                // Explicit priorities always take the overflow heap;
                // deadline'd tasks take it only once the deadline is
                // close enough to be at risk — far-out deadlines stay on
                // the lock-free path.
                let urgent = t.deadline_ns != NO_DEADLINE
                    && t.deadline_ns <= self.now_ns().saturating_add(EDF_URGENT_WINDOW_NS);
                if t.priority != 0 || urgent {
                    self.trace(
                        TraceEventKind::EnqueueOverflow,
                        id,
                        slot,
                        gen,
                        t.priority as u64,
                    );
                    return self.push_overflow(t);
                }
                match local {
                    Some(deque) => {
                        self.trace(TraceEventKind::EnqueueLocal, id, slot, gen, 0);
                        if let Err(t) = deque.push(t) {
                            // Spill: the task really lands on the injector.
                            self.trace(TraceEventKind::EnqueueInjector, id, slot, gen, 1);
                            self.injector.push(t);
                        }
                    }
                    None => {
                        self.trace(TraceEventKind::EnqueueInjector, id, slot, gen, 0);
                        self.injector.push(t)
                    }
                }
            }
            SchedulerPolicy::Priority => {
                self.trace(TraceEventKind::EnqueueGlobal, id, slot, gen, 0);
                self.heap.lock().push(PrioEntry(self.stamp(t)))
            }
            SchedulerPolicy::CriticalityAware { .. } => {
                if t.critical {
                    self.trace(TraceEventKind::EnqueueInjector, id, slot, gen, 2);
                    self.critical.push(t);
                } else {
                    self.trace(TraceEventKind::EnqueueInjector, id, slot, gen, 0);
                    self.injector.push(t);
                }
            }
        }
    }

    /// Pop a task for worker `who`, given its local deque and the stealers
    /// of every worker. Returns `None` when no work is visible (the caller
    /// parks).
    pub fn pop(
        &self,
        who: usize,
        local: Option<&WorkerDeque<ReadyTask>>,
        stealers: &[DequeStealer<ReadyTask>],
    ) -> Option<ReadyTask> {
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.lock().pop_front(),
            SchedulerPolicy::Lifo => self.lifo.lock().pop(),
            SchedulerPolicy::Priority => self.heap.lock().pop().map(|e| e.0),
            SchedulerPolicy::WorkStealing => {
                if let Some(t) = local.and_then(|d| d.pop()) {
                    return Some(t);
                }
                // A near-deadline task in the overflow heap outranks the
                // injector backlog — this is what lets a critical job's
                // tasks jump the queue under overload. Plain runs pay one
                // atomic load here.
                if self.overflow_is_urgent() {
                    if let Some(t) = self.pop_overflow() {
                        return Some(t);
                    }
                }
                if let Some(t) = self.injector.pop() {
                    return Some(t);
                }
                // Steal from siblings, starting after ourselves to spread
                // contention. Each probe claims up to half the victim's
                // queue in one CAS: the first task is returned, the rest
                // land on our own deque (spilling to the injector only if
                // we are somehow full). `Retry` means another thief holds
                // the victim's claim window — moving on to the next
                // victim beats spinning on a contended head word.
                let n = stealers.len();
                for off in 1..n.max(1) {
                    let victim = (who + off) % n;
                    let cell = &self.victim_steals[victim % MAX_TRACKED_VICTIMS];
                    let mut extras = 0u64;
                    let got = {
                        let mut sink = |t: ReadyTask| {
                            extras += 1;
                            match local {
                                Some(d) => {
                                    if let Err(t) = d.push(t) {
                                        self.injector.push(t);
                                    }
                                }
                                None => self.injector.push(t),
                            }
                        };
                        stealers[victim].steal_half_with(&mut sink)
                    };
                    match got {
                        Steal::Success(t) => {
                            self.steals_ok.fetch_add(1 + extras, Ordering::Relaxed);
                            cell.ok.fetch_add(1 + extras, Ordering::Relaxed);
                            self.trace(TraceEventKind::StealOk, t.id, t.slot, t.gen, victim as u64);
                            return Some(t);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => {
                            cell.empty.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                if n > 1 {
                    self.steals_empty.fetch_add(1, Ordering::Relaxed);
                    self.trace(TraceEventKind::StealEmpty, NO_TASK, 0, 0, n as u64);
                }
                // Steal-miss: consult the priority overflow heap.
                if self.overflow_len.load(Ordering::Acquire) > 0 {
                    return self.pop_overflow();
                }
                None
            }
            SchedulerPolicy::CriticalityAware { fast_workers } => {
                let fast = who < fast_workers;
                let (first, second) = if fast {
                    (&self.critical, &self.injector)
                } else {
                    (&self.injector, &self.critical)
                };
                first.pop().or_else(|| second.pop())
            }
        }
    }

    /// Best-effort emptiness check (for parking decisions).
    pub fn looks_empty(&self) -> bool {
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.lock().is_empty(),
            SchedulerPolicy::Lifo => self.lifo.lock().is_empty(),
            SchedulerPolicy::Priority => self.heap.lock().is_empty(),
            SchedulerPolicy::WorkStealing => {
                self.injector.is_empty() && self.overflow_len.load(Ordering::Acquire) == 0
            }
            SchedulerPolicy::CriticalityAware { .. } => {
                self.injector.is_empty() && self.critical.is_empty()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(id: u32, priority: i32, critical: bool) -> ReadyTask {
        ReadyTask {
            id: TaskId(id),
            slot: 0,
            gen: 0,
            priority,
            critical,
            deadline_ns: NO_DEADLINE,
            seq: 0,
            body: ExecBody::once(|| {}),
        }
    }

    fn rt_deadline(id: u32, deadline_ns: u64) -> ReadyTask {
        ReadyTask {
            deadline_ns,
            ..rt(id, 0, false)
        }
    }

    #[test]
    fn fifo_order() {
        let q = ReadyQueues::new(SchedulerPolicy::Fifo);
        q.push(rt(0, 0, false), None);
        q.push(rt(1, 0, false), None);
        q.push(rt(2, 0, false), None);
        let ids: Vec<u32> = (0..3).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(q.pop(0, None, &[]).is_none());
    }

    #[test]
    fn lifo_order() {
        let q = ReadyQueues::new(SchedulerPolicy::Lifo);
        for i in 0..3 {
            q.push(rt(i, 0, false), None);
        }
        let ids: Vec<u32> = (0..3).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![2, 1, 0]);
    }

    #[test]
    fn priority_order_with_fifo_ties() {
        let q = ReadyQueues::new(SchedulerPolicy::Priority);
        q.push(rt(0, 1, false), None);
        q.push(rt(1, 5, false), None);
        q.push(rt(2, 1, false), None);
        q.push(rt(3, 5, false), None);
        let ids: Vec<u32> = (0..4).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![1, 3, 0, 2], "priority desc, FIFO within ties");
    }

    #[test]
    fn work_stealing_prefers_local_then_injector() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let local = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [local.stealer()];
        q.push(rt(0, 0, false), None); // goes to injector
        q.push(rt(1, 0, false), Some(&local)); // local
        let first = q.pop(0, Some(&local), &stealers).unwrap();
        assert_eq!(first.id.0, 1, "local deque first");
        let second = q.pop(0, Some(&local), &stealers).unwrap();
        assert_eq!(second.id.0, 0);
    }

    #[test]
    fn work_stealing_steals_from_sibling() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let w0 = WorkerDeque::new(WORKER_DEQUE_CAP);
        let w1 = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [w0.stealer(), w1.stealer()];
        q.push(rt(7, 0, false), Some(&w1));
        // Worker 0 has nothing local and the injector is empty: it must
        // steal worker 1's task.
        let got = q.pop(0, Some(&w0), &stealers).unwrap();
        assert_eq!(got.id.0, 7);
    }

    #[test]
    fn work_stealing_prioritised_tasks_served_on_steal_miss() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let local = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [local.stealer()];
        q.push(rt(0, 2, false), Some(&local)); // prioritised: overflow heap
        q.push(rt(1, 5, false), Some(&local));
        q.push(rt(2, 0, false), Some(&local)); // plain: local deque
        assert_eq!(q.overflow_len.load(Ordering::Relaxed), 2);
        // Plain local work first; on steal-miss the heap serves by
        // priority.
        let ids: Vec<u32> = (0..3)
            .map(|_| q.pop(0, Some(&local), &stealers).unwrap().id.0)
            .collect();
        assert_eq!(ids, vec![2, 1, 0]);
        assert!(q.looks_empty());
    }

    #[test]
    fn criticality_queue_routing() {
        let q = ReadyQueues::new(SchedulerPolicy::CriticalityAware { fast_workers: 1 });
        q.push(rt(0, 0, false), None);
        q.push(rt(1, 0, true), None);
        // Fast worker 0 sees the critical task first.
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 1);
        // Slow worker 1 sees the normal task.
        assert_eq!(q.pop(1, None, &[]).unwrap().id.0, 0);
        assert!(q.looks_empty());
    }

    #[test]
    fn criticality_slow_worker_falls_back_to_critical() {
        let q = ReadyQueues::new(SchedulerPolicy::CriticalityAware { fast_workers: 1 });
        q.push(rt(3, 0, true), None);
        // Nothing in the normal queue: the slow worker still takes the
        // critical task rather than idling.
        assert_eq!(q.pop(5, None, &[]).unwrap().id.0, 3);
    }

    #[test]
    fn overflow_heap_breaks_priority_ties_earliest_deadline_first() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let local = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [local.stealer()];
        // Same explicit priority, different deadlines; plus one
        // deadline-free entry that must sort last within the tie.
        q.push(
            ReadyTask {
                deadline_ns: 900,
                ..rt(0, 3, false)
            },
            Some(&local),
        );
        q.push(
            ReadyTask {
                deadline_ns: 100,
                ..rt(1, 3, false)
            },
            Some(&local),
        );
        q.push(rt(2, 3, false), Some(&local)); // NO_DEADLINE
        q.push(
            ReadyTask {
                deadline_ns: 500,
                ..rt(3, 3, false)
            },
            Some(&local),
        );
        let ids: Vec<u32> = (0..4)
            .map(|_| q.pop(0, Some(&local), &stealers).unwrap().id.0)
            .collect();
        assert_eq!(ids, vec![1, 3, 0, 2], "EDF within a priority tie");
    }

    #[test]
    fn near_deadline_task_jumps_the_injector_backlog() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        // A pile of plain work on the injector...
        for i in 0..8 {
            q.push(rt(i, 0, false), None);
        }
        // ...then a zero-priority task whose deadline is already urgent
        // (1ns past the epoch is long gone by now).
        q.push(rt_deadline(99, 1), None);
        assert_eq!(
            q.overflow_len.load(Ordering::Relaxed),
            1,
            "urgent task took the heap"
        );
        // With no local deque, the urgent task is served before the
        // injector backlog.
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 99);
        // The rest drain in injector order.
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 0);
    }

    #[test]
    fn far_deadline_tasks_stay_on_the_lock_free_path() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        // Deadline an hour out: must ride the injector, not the heap.
        let far = q.now_ns() + 3_600_000_000_000;
        q.push(rt_deadline(1, far), None);
        assert_eq!(q.overflow_len.load(Ordering::Relaxed), 0);
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 1);
    }

    #[test]
    fn overflow_min_deadline_resets_when_the_heap_empties() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        q.push(rt_deadline(1, 1), None);
        assert!(q.overflow_is_urgent());
        q.pop(0, None, &[]).unwrap();
        assert!(!q.overflow_is_urgent());
        assert_eq!(q.overflow_min_deadline.load(Ordering::Relaxed), NO_DEADLINE);
    }

    #[test]
    fn stamp_is_monotonic() {
        let q = ReadyQueues::new(SchedulerPolicy::Fifo);
        let a = q.stamp(rt(0, 0, false));
        let b = q.stamp(rt(1, 0, false));
        assert!(b.seq > a.seq);
    }
}
