//! Ready-task scheduling policies.
//!
//! The runtime's ready pool is pluggable, because the paper's point is
//! precisely that *scheduling policy* is a first-class architectural
//! concern.  Policies:
//!
//! * [`SchedulerPolicy::Fifo`] — one global FIFO (the classic centralised
//!   queue; the baseline Carbon-style hardware queue would accelerate).
//! * [`SchedulerPolicy::Lifo`] — one global LIFO stack (depth-first).
//! * [`SchedulerPolicy::WorkStealing`] — per-worker deques + a global
//!   injector, Cilk/Nanos style. The default.
//! * [`SchedulerPolicy::Priority`] — a global binary heap on task priority
//!   (ties broken FIFO).
//! * [`SchedulerPolicy::CriticalityAware`] — CATS-like: critical tasks go
//!   to a dedicated queue served preferentially by the designated "fast"
//!   workers; non-critical tasks are served by the rest.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::Mutex;

use crate::task::{ExecBody, TaskId};

/// Scheduling policy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    Fifo,
    Lifo,
    #[default]
    WorkStealing,
    Priority,
    /// `fast_workers` = number of workers that prefer the critical queue.
    CriticalityAware {
        fast_workers: usize,
    },
}

/// A task that is ready to run, together with everything the scheduler
/// needs to order it.
pub struct ReadyTask {
    pub id: TaskId,
    pub priority: i32,
    pub critical: bool,
    pub seq: u64,
    pub body: ExecBody,
}

impl std::fmt::Debug for ReadyTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadyTask")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("critical", &self.critical)
            .finish()
    }
}

/// Heap ordering wrapper: max priority first, then earliest submission.
struct PrioEntry(ReadyTask);

impl PartialEq for PrioEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.priority == other.0.priority && self.0.seq == other.0.seq
    }
}
impl Eq for PrioEntry {}
impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .priority
            .cmp(&other.0.priority)
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

/// Global scheduling structures (per-worker deques live in the pool).
pub struct ReadyQueues {
    policy: SchedulerPolicy,
    injector: Injector<ReadyTask>,
    critical: Injector<ReadyTask>,
    fifo: Mutex<VecDeque<ReadyTask>>,
    lifo: Mutex<Vec<ReadyTask>>,
    heap: Mutex<BinaryHeap<PrioEntry>>,
    seq: AtomicU64,
}

impl ReadyQueues {
    pub fn new(policy: SchedulerPolicy) -> Self {
        ReadyQueues {
            policy,
            injector: Injector::new(),
            critical: Injector::new(),
            fifo: Mutex::new(VecDeque::new()),
            lifo: Mutex::new(Vec::new()),
            heap: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
        }
    }

    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Stamp a ready task with a global submission sequence number.
    pub fn stamp(&self, mut t: ReadyTask) -> ReadyTask {
        t.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        t
    }

    /// Push a ready task to the global structures. `local` is the current
    /// worker's own deque when the push happens on a worker thread (used
    /// by the work-stealing policy for locality).
    pub fn push(&self, t: ReadyTask, local: Option<&Deque<ReadyTask>>) {
        let t = self.stamp(t);
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.lock().push_back(t),
            SchedulerPolicy::Lifo => self.lifo.lock().push(t),
            SchedulerPolicy::WorkStealing => match local {
                Some(deque) => deque.push(t),
                None => self.injector.push(t),
            },
            SchedulerPolicy::Priority => self.heap.lock().push(PrioEntry(t)),
            SchedulerPolicy::CriticalityAware { .. } => {
                if t.critical {
                    self.critical.push(t);
                } else {
                    self.injector.push(t);
                }
            }
        }
    }

    /// Pop a task for worker `who`, given its local deque and the stealers
    /// of every worker. Returns `None` when no work is visible (the caller
    /// parks).
    pub fn pop(
        &self,
        who: usize,
        local: Option<&Deque<ReadyTask>>,
        stealers: &[Stealer<ReadyTask>],
    ) -> Option<ReadyTask> {
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.lock().pop_front(),
            SchedulerPolicy::Lifo => self.lifo.lock().pop(),
            SchedulerPolicy::Priority => self.heap.lock().pop().map(|e| e.0),
            SchedulerPolicy::WorkStealing => {
                if let Some(t) = local.and_then(|d| d.pop()) {
                    return Some(t);
                }
                loop {
                    match self.injector.steal() {
                        Steal::Success(t) => return Some(t),
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
                // Steal from siblings, starting after ourselves to spread
                // contention.
                let n = stealers.len();
                for off in 1..n.max(1) {
                    let victim = (who + off) % n;
                    loop {
                        match stealers[victim].steal() {
                            Steal::Success(t) => return Some(t),
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                    }
                }
                None
            }
            SchedulerPolicy::CriticalityAware { fast_workers } => {
                let fast = who < fast_workers;
                let (first, second) = if fast {
                    (&self.critical, &self.injector)
                } else {
                    (&self.injector, &self.critical)
                };
                for q in [first, second] {
                    loop {
                        match q.steal() {
                            Steal::Success(t) => return Some(t),
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                    }
                }
                None
            }
        }
    }

    /// Best-effort emptiness check (for parking decisions).
    pub fn looks_empty(&self) -> bool {
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.lock().is_empty(),
            SchedulerPolicy::Lifo => self.lifo.lock().is_empty(),
            SchedulerPolicy::Priority => self.heap.lock().is_empty(),
            SchedulerPolicy::WorkStealing => self.injector.is_empty(),
            SchedulerPolicy::CriticalityAware { .. } => {
                self.injector.is_empty() && self.critical.is_empty()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(id: u32, priority: i32, critical: bool) -> ReadyTask {
        ReadyTask {
            id: TaskId(id),
            priority,
            critical,
            seq: 0,
            body: ExecBody::once(|| {}),
        }
    }

    #[test]
    fn fifo_order() {
        let q = ReadyQueues::new(SchedulerPolicy::Fifo);
        q.push(rt(0, 0, false), None);
        q.push(rt(1, 0, false), None);
        q.push(rt(2, 0, false), None);
        let ids: Vec<u32> = (0..3).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(q.pop(0, None, &[]).is_none());
    }

    #[test]
    fn lifo_order() {
        let q = ReadyQueues::new(SchedulerPolicy::Lifo);
        for i in 0..3 {
            q.push(rt(i, 0, false), None);
        }
        let ids: Vec<u32> = (0..3).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![2, 1, 0]);
    }

    #[test]
    fn priority_order_with_fifo_ties() {
        let q = ReadyQueues::new(SchedulerPolicy::Priority);
        q.push(rt(0, 1, false), None);
        q.push(rt(1, 5, false), None);
        q.push(rt(2, 1, false), None);
        q.push(rt(3, 5, false), None);
        let ids: Vec<u32> = (0..4).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![1, 3, 0, 2], "priority desc, FIFO within ties");
    }

    #[test]
    fn work_stealing_prefers_local_then_injector() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let local = Deque::new_lifo();
        let stealers = [local.stealer()];
        q.push(rt(0, 0, false), None); // goes to injector
        q.push(rt(1, 0, false), Some(&local)); // local
        let first = q.pop(0, Some(&local), &stealers).unwrap();
        assert_eq!(first.id.0, 1, "local deque first");
        let second = q.pop(0, Some(&local), &stealers).unwrap();
        assert_eq!(second.id.0, 0);
    }

    #[test]
    fn work_stealing_steals_from_sibling() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let w0 = Deque::new_lifo();
        let w1 = Deque::new_lifo();
        let stealers = [w0.stealer(), w1.stealer()];
        q.push(rt(7, 0, false), Some(&w1));
        // Worker 0 has nothing local and the injector is empty: it must
        // steal worker 1's task.
        let got = q.pop(0, Some(&w0), &stealers).unwrap();
        assert_eq!(got.id.0, 7);
    }

    #[test]
    fn criticality_queue_routing() {
        let q = ReadyQueues::new(SchedulerPolicy::CriticalityAware { fast_workers: 1 });
        q.push(rt(0, 0, false), None);
        q.push(rt(1, 0, true), None);
        // Fast worker 0 sees the critical task first.
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 1);
        // Slow worker 1 sees the normal task.
        assert_eq!(q.pop(1, None, &[]).unwrap().id.0, 0);
        assert!(q.looks_empty());
    }

    #[test]
    fn criticality_slow_worker_falls_back_to_critical() {
        let q = ReadyQueues::new(SchedulerPolicy::CriticalityAware { fast_workers: 1 });
        q.push(rt(3, 0, true), None);
        // Nothing in the normal queue: the slow worker still takes the
        // critical task rather than idling.
        assert_eq!(q.pop(5, None, &[]).unwrap().id.0, 3);
    }

    #[test]
    fn stamp_is_monotonic() {
        let q = ReadyQueues::new(SchedulerPolicy::Fifo);
        let a = q.stamp(rt(0, 0, false));
        let b = q.stamp(rt(1, 0, false));
        assert!(b.seq > a.seq);
    }
}
