//! Ready-task scheduling policies.
//!
//! The runtime's ready pool is pluggable, because the paper's point is
//! precisely that *scheduling policy* is a first-class architectural
//! concern.  Policies:
//!
//! * [`SchedulerPolicy::Fifo`] — one global FIFO (the classic centralised
//!   queue; the baseline Carbon-style hardware queue would accelerate).
//! * [`SchedulerPolicy::Lifo`] — one global LIFO stack (depth-first).
//! * [`SchedulerPolicy::WorkStealing`] — per-worker steal-half deques +
//!   a lock-free bounded injector (see [`crate::deque`]), Cilk/Nanos
//!   style. The default, and the only fully lock-free hot path: thieves
//!   migrate up to half a victim's queue per claim, and worker-local
//!   spawns take the owner's own deque, so the injector only carries
//!   external submissions and spill.
//!   Tasks carrying an explicit priority go to a small overflow heap
//!   that workers consult only on steal-miss, so the priority machinery
//!   costs nothing while ordinary work is flowing.
//! * [`SchedulerPolicy::Priority`] — a global binary heap on task priority
//!   (ties broken FIFO).
//! * [`SchedulerPolicy::CriticalityAware`] — CATS-like: critical tasks go
//!   to a dedicated queue served preferentially by the designated "fast"
//!   workers; non-critical tasks are served by the rest.
//!
//! The legacy global policies (Fifo/Lifo/Priority) keep their exact
//! ordering semantics behind one mutex each — they exist to *study*
//! centralised scheduling, not to win benchmarks.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::deque::{DequeStealer, Injector, Steal, WorkerDeque};
use crate::stats::{ClusterSteals, VictimSteals};
use crate::task::{ExecBody, TaskId};
use crate::topology::Topology;
use crate::trace::{TraceEventKind, Tracer, NO_TASK};

pub use crate::topology::NO_HOME;

/// Ring capacity of the shared injectors. Bursts beyond this spill to a
/// mutex-protected overflow list (correct, slower) — sized so that only
/// pathological spawn storms ever reach the spill.
const INJECTOR_RING: usize = 1 << 15;

/// Sentinel deadline for tasks whose job carries none: sorts after every
/// real deadline, so plain-priority ordering is unchanged.
pub const NO_DEADLINE: u64 = u64::MAX;

/// A deadline within this many nanoseconds of now counts as *urgent*:
/// such tasks are routed to the overflow heap at push time and the heap
/// is consulted *before* the injector at pop time. Tasks whose deadline
/// is comfortably far ride the ordinary lock-free path — the EDF
/// machinery costs nothing until a deadline is actually at risk.
pub const EDF_URGENT_WINDOW_NS: u64 = 5_000_000;

/// Per-worker deque capacity; overflow from a completion burst goes to
/// the shared injector.
pub const WORKER_DEQUE_CAP: usize = 1 << 13;

/// Per-victim steal counters are kept in a fixed-size table (indexed
/// `victim % MAX_TRACKED_VICTIMS`) so `ReadyQueues` needs no worker
/// count at construction; pools larger than this alias counters, which
/// only blurs the attribution, never the totals.
pub const MAX_TRACKED_VICTIMS: usize = 64;

/// Consecutive intra-cluster steal misses before a worker escalates to
/// the inter-cluster balancer. One miss is noise (a thief racing us);
/// two in a row means the cluster really is dry.
pub const BALANCE_AFTER_MISSES: u64 = 2;

/// Max tasks the balancer drains from a remote cluster's injector in one
/// visit. Balancing moves batches, not single tasks — the whole point is
/// to amortise the cross-cluster trip.
pub const BALANCE_BATCH: usize = 32;

/// Atomic cell of the per-victim steal table.
#[derive(Default)]
struct VictimCell {
    ok: AtomicU64,
    empty: AtomicU64,
}

/// Atomic cell of the per-cluster steal table: intra/inter hit rates and
/// the balancer's migration volume, attributed to the *thief's* cluster.
#[derive(Default)]
struct ClusterCell {
    intra_ok: AtomicU64,
    intra_empty: AtomicU64,
    inter_ok: AtomicU64,
    inter_empty: AtomicU64,
    migrated: AtomicU64,
}

/// Scheduling policy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    Fifo,
    Lifo,
    #[default]
    WorkStealing,
    Priority,
    /// `fast_workers` = number of workers that prefer the critical queue.
    CriticalityAware {
        fast_workers: usize,
    },
}

/// Per-job quality-of-service class, consumed by the job layer's
/// admission path and by the scheduler's routing decision:
///
/// * [`QosClass::Guaranteed`] tasks are always admitted (subject only to
///   the configured in-flight caps) and keep their computed criticality.
/// * [`QosClass::BestEffort`] tasks are load-shed once the runtime's
///   global in-flight count reaches the configured shed watermark, and
///   are always scheduled as non-critical — under
///   [`SchedulerPolicy::CriticalityAware`] they are served by the slow
///   workers and never displace guaranteed work from the fast ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum QosClass {
    #[default]
    Guaranteed,
    BestEffort,
}

impl QosClass {
    /// True when tasks of this class may be dropped under pressure.
    pub fn sheddable(&self) -> bool {
        matches!(self, QosClass::BestEffort)
    }
}

/// A task that is ready to run, together with everything the scheduler
/// needs to order it.
pub struct ReadyTask {
    pub id: TaskId,
    /// Slab slot of the task's runtime bookkeeping (see
    /// [`crate::task::TaskSlab`]); echoed back on completion.
    pub slot: u32,
    /// Slot generation at enqueue time (0 when not tracked) — lets trace
    /// consumers tell retry attempts apart from slab-slot reuse.
    pub gen: u64,
    pub priority: i32,
    pub critical: bool,
    /// Absolute deadline in nanoseconds since the runtime epoch
    /// ([`NO_DEADLINE`] when the owning job has none). Breaks priority
    /// ties earliest-deadline-first in the overflow heap and makes
    /// near-deadline tasks jump the injector.
    pub deadline_ns: u64,
    /// Home cluster derived from the task's declared SPM/region
    /// footprint ([`NO_HOME`] when it touches nothing, or the topology
    /// is flat). External pushes land on this cluster's injector, so a
    /// task starts next to the tile that owns its data.
    pub home: u32,
    pub seq: u64,
    pub body: ExecBody,
}

impl std::fmt::Debug for ReadyTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadyTask")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("critical", &self.critical)
            .finish()
    }
}

/// Heap ordering wrapper: max priority first, then earliest deadline,
/// then earliest submission. Tasks without a deadline carry
/// [`NO_DEADLINE`], so the deadline tie-break is inert for them and the
/// pre-deadline priority semantics are unchanged.
struct PrioEntry(ReadyTask);

impl PartialEq for PrioEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.priority == other.0.priority
            && self.0.deadline_ns == other.0.deadline_ns
            && self.0.seq == other.0.seq
    }
}
impl Eq for PrioEntry {}
impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .priority
            .cmp(&other.0.priority)
            .then(other.0.deadline_ns.cmp(&self.0.deadline_ns))
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

/// Global scheduling structures (per-worker deques live in the pool).
pub struct ReadyQueues {
    policy: SchedulerPolicy,
    /// Worker cluster map: bounds the steal sweep, routes external
    /// pushes, and gates the inter-cluster balancer. `Topology::flat`
    /// keeps every path on its pre-hierarchy behaviour.
    topology: Topology,
    /// One injector per cluster (exactly one when flat): external
    /// submissions and spill stay on the cluster that owns them, so
    /// cross-cluster traffic is the balancer's decision, not an accident
    /// of a shared MPMC queue.
    injectors: Box<[Injector<ReadyTask>]>,
    /// Round-robin cursor for external pushes with no home cluster.
    next_cluster: AtomicUsize,
    critical: Injector<ReadyTask>,
    /// Work-stealing overflow for explicitly prioritised tasks,
    /// consulted only on steal-miss.
    overflow: Mutex<BinaryHeap<PrioEntry>>,
    overflow_len: AtomicUsize,
    /// Approximate earliest deadline sitting in the overflow heap
    /// (`NO_DEADLINE` when none): `fetch_min` on push, reset only when
    /// the heap empties. May lag the heap (a stale *early* value just
    /// causes one spurious overflow poll — work-conserving either way).
    overflow_min_deadline: AtomicU64,
    /// Wall-clock origin for `deadline_ns` values; shared with the
    /// runtime so job deadlines and scheduler urgency agree.
    epoch: Instant,
    fifo: Mutex<VecDeque<ReadyTask>>,
    lifo: Mutex<Vec<ReadyTask>>,
    heap: Mutex<BinaryHeap<PrioEntry>>,
    seq: AtomicU64,
    /// Successful steals from sibling deques.
    steals_ok: AtomicU64,
    /// Full steal sweeps that found nothing (only counted when there is
    /// more than one worker to sweep).
    steals_empty: AtomicU64,
    /// Per-victim steal outcomes: `ok` counts claims satisfied from that
    /// victim's deque, `empty` counts probes that found it bare. Feeds
    /// the contention report's hit-rate table.
    victim_steals: Box<[VictimCell]>,
    /// Per-cluster steal outcomes (one cell per cluster).
    cluster_steals: Box<[ClusterCell]>,
    /// Consecutive intra-cluster steal misses per worker (indexed
    /// `who % MAX_TRACKED_VICTIMS`, like the victim table); reaching
    /// [`BALANCE_AFTER_MISSES`] arms the inter-cluster balancer.
    balance_miss: Box<[AtomicU64]>,
    tracer: Option<Arc<Tracer>>,
}

impl ReadyQueues {
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self::with_tracer(policy, Topology::flat(1), None, Instant::now())
    }

    /// Like [`ReadyQueues::new`] but clustered.
    pub fn with_topology(policy: SchedulerPolicy, topology: Topology) -> Self {
        Self::with_tracer(policy, topology, None, Instant::now())
    }

    /// `epoch` is the origin against which `ReadyTask::deadline_ns` is
    /// measured; the runtime passes its own so both sides agree.
    pub fn with_tracer(
        policy: SchedulerPolicy,
        topology: Topology,
        tracer: Option<Arc<Tracer>>,
        epoch: Instant,
    ) -> Self {
        ReadyQueues {
            policy,
            topology,
            injectors: (0..topology.clusters)
                .map(|_| Injector::new(INJECTOR_RING))
                .collect(),
            next_cluster: AtomicUsize::new(0),
            critical: Injector::new(INJECTOR_RING),
            overflow: Mutex::new(BinaryHeap::new()),
            overflow_len: AtomicUsize::new(0),
            overflow_min_deadline: AtomicU64::new(NO_DEADLINE),
            epoch,
            fifo: Mutex::new(VecDeque::new()),
            lifo: Mutex::new(Vec::new()),
            heap: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            steals_ok: AtomicU64::new(0),
            steals_empty: AtomicU64::new(0),
            victim_steals: (0..MAX_TRACKED_VICTIMS)
                .map(|_| VictimCell::default())
                .collect(),
            cluster_steals: (0..topology.clusters)
                .map(|_| ClusterCell::default())
                .collect(),
            balance_miss: (0..MAX_TRACKED_VICTIMS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            tracer,
        }
    }

    /// The worker cluster map this scheduler routes by.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// `(steals_ok, steals_empty, injector_overflow)` — always-on relaxed
    /// counters, merged into `StatsSnapshot`.
    pub fn contention_counters(&self) -> (u64, u64, u64) {
        (
            self.steals_ok.load(Ordering::Relaxed),
            self.steals_empty.load(Ordering::Relaxed),
            self.injectors
                .iter()
                .map(|i| i.overflow_events())
                .sum::<u64>()
                + self.critical.overflow_events(),
        )
    }

    /// Per-victim steal hit/miss table for the first `n` workers (counts
    /// alias above [`MAX_TRACKED_VICTIMS`]).
    pub fn per_victim_steals(&self, n: usize) -> Vec<VictimSteals> {
        self.victim_steals
            .iter()
            .take(n.min(MAX_TRACKED_VICTIMS))
            .map(|c| VictimSteals {
                ok: c.ok.load(Ordering::Relaxed),
                empty: c.empty.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// `(pushes, overflow_events)` across the shared injectors — the
    /// contention report's "how much traffic missed the local path"
    /// signal.
    pub fn injector_traffic(&self) -> (u64, u64) {
        (
            self.injectors.iter().map(|i| i.push_events()).sum::<u64>()
                + self.critical.push_events(),
            self.injectors
                .iter()
                .map(|i| i.overflow_events())
                .sum::<u64>()
                + self.critical.overflow_events(),
        )
    }

    /// Per-cluster steal/balance counters (one entry per cluster; a flat
    /// topology yields a single entry covering the whole pool).
    pub fn per_cluster_steals(&self) -> Vec<ClusterSteals> {
        self.cluster_steals
            .iter()
            .enumerate()
            .map(|(c, cell)| ClusterSteals {
                intra_ok: cell.intra_ok.load(Ordering::Relaxed),
                intra_empty: cell.intra_empty.load(Ordering::Relaxed),
                inter_ok: cell.inter_ok.load(Ordering::Relaxed),
                inter_empty: cell.inter_empty.load(Ordering::Relaxed),
                migrated: cell.migrated.load(Ordering::Relaxed),
                injector_pushes: self.injectors[c].push_events(),
            })
            .collect()
    }

    /// Worker-only emission: scheduler events from unbound (external)
    /// threads are skipped — a ready-at-spawn task pushed from the
    /// spawning thread is already implied by its Spawn record (ready
    /// bit), and steals/pops only ever happen on workers. This keeps the
    /// external spawn hot path at one traced event per task.
    #[inline]
    fn trace(&self, kind: TraceEventKind, task: TaskId, slot: u32, gen: u64, arg: u64) {
        if let Some(t) = &self.tracer {
            t.emit_from_worker(kind, task, slot, gen, arg);
        }
    }

    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Stamp a ready task with a global submission sequence number.
    /// Only the policies that order on `seq` pay for the shared counter.
    pub fn stamp(&self, mut t: ReadyTask) -> ReadyTask {
        t.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        t
    }

    /// Nanoseconds elapsed since the runtime epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_overflow(&self, t: ReadyTask) {
        if t.deadline_ns != NO_DEADLINE {
            self.overflow_min_deadline
                .fetch_min(t.deadline_ns, Ordering::AcqRel);
        }
        let mut heap = self.overflow.lock();
        heap.push(PrioEntry(self.stamp(t)));
        self.overflow_len.store(heap.len(), Ordering::Release);
    }

    /// Pop the overflow heap, keeping `overflow_len` and the approximate
    /// min-deadline in sync. The min-deadline is only *reset* when the
    /// heap empties: between pops it may be stale-early, which costs at
    /// most a wasted poll.
    fn pop_overflow(&self) -> Option<ReadyTask> {
        let mut heap = self.overflow.lock();
        let t = heap.pop().map(|e| e.0);
        self.overflow_len.store(heap.len(), Ordering::Release);
        if heap.is_empty() {
            self.overflow_min_deadline
                .store(NO_DEADLINE, Ordering::Release);
        }
        t
    }

    /// True when the overflow heap (probably) holds a task whose deadline
    /// falls inside the urgency window — one relaxed load on the hot
    /// path when the heap is empty.
    #[inline]
    fn overflow_is_urgent(&self) -> bool {
        if self.overflow_len.load(Ordering::Acquire) == 0 {
            return false;
        }
        let min = self.overflow_min_deadline.load(Ordering::Acquire);
        min != NO_DEADLINE && min <= self.now_ns().saturating_add(EDF_URGENT_WINDOW_NS)
    }

    /// Cluster of worker `who`, free when the topology is flat.
    #[inline]
    fn cluster_index(&self, who: usize) -> usize {
        if self.injectors.len() == 1 {
            0
        } else {
            self.topology.cluster_of(who)
        }
    }

    /// Injector an *external* (non-worker) push of `t` should land on:
    /// the task's home cluster when it declared one, else round-robin
    /// across clusters. Flat topologies skip both and pay nothing.
    #[inline]
    fn injector_for_home(&self, home: u32) -> &Injector<ReadyTask> {
        let k = self.injectors.len();
        if k == 1 {
            return &self.injectors[0];
        }
        let c = if home == NO_HOME {
            self.next_cluster.fetch_add(1, Ordering::Relaxed) % k
        } else {
            home as usize % k
        };
        &self.injectors[c]
    }

    /// Push a ready task to the global structures. `local` is the current
    /// worker's own deque and index when the push happens on a worker
    /// thread (used by the work-stealing policy for locality).
    ///
    /// Returns `true` iff the task landed on the *caller's own* deque —
    /// the caller will pop it itself, so no wake is needed for it.
    pub fn push(&self, t: ReadyTask, local: Option<(&WorkerDeque<ReadyTask>, usize)>) -> bool {
        // Enqueue events are emitted *before* the push: once the task is
        // visible another worker can start it, and its `start` must not
        // precede the enqueue record in the trace.
        let (id, slot, gen) = (t.id, t.slot, t.gen);
        match self.policy {
            SchedulerPolicy::Fifo => {
                self.trace(TraceEventKind::EnqueueGlobal, id, slot, gen, 0);
                self.fifo.lock().push_back(self.stamp(t))
            }
            SchedulerPolicy::Lifo => {
                self.trace(TraceEventKind::EnqueueGlobal, id, slot, gen, 0);
                self.lifo.lock().push(self.stamp(t))
            }
            SchedulerPolicy::WorkStealing => {
                // Explicit priorities always take the overflow heap;
                // deadline'd tasks take it only once the deadline is
                // close enough to be at risk — far-out deadlines stay on
                // the lock-free path.
                let urgent = t.deadline_ns != NO_DEADLINE
                    && t.deadline_ns <= self.now_ns().saturating_add(EDF_URGENT_WINDOW_NS);
                if t.priority != 0 || urgent {
                    self.trace(
                        TraceEventKind::EnqueueOverflow,
                        id,
                        slot,
                        gen,
                        t.priority as u64,
                    );
                    self.push_overflow(t);
                    return false;
                }
                match local {
                    Some((deque, who)) => {
                        self.trace(TraceEventKind::EnqueueLocal, id, slot, gen, 0);
                        if let Err(t) = deque.push(t) {
                            // Spill: the task really lands on the
                            // pushing worker's own cluster injector.
                            self.trace(TraceEventKind::EnqueueInjector, id, slot, gen, 1);
                            self.injectors[self.cluster_index(who)].push(t);
                            return false;
                        }
                        return true;
                    }
                    None => {
                        self.trace(TraceEventKind::EnqueueInjector, id, slot, gen, 0);
                        self.injector_for_home(t.home).push(t)
                    }
                }
            }
            SchedulerPolicy::Priority => {
                self.trace(TraceEventKind::EnqueueGlobal, id, slot, gen, 0);
                self.heap.lock().push(PrioEntry(self.stamp(t)))
            }
            SchedulerPolicy::CriticalityAware { .. } => {
                if t.critical {
                    self.trace(TraceEventKind::EnqueueInjector, id, slot, gen, 2);
                    self.critical.push(t);
                } else {
                    self.trace(TraceEventKind::EnqueueInjector, id, slot, gen, 0);
                    self.injectors[0].push(t);
                }
            }
        }
        false
    }

    /// Pop a task for worker `who`, given its local deque and the stealers
    /// of every worker. Returns `None` when no work is visible (the caller
    /// parks).
    pub fn pop(
        &self,
        who: usize,
        local: Option<(&WorkerDeque<ReadyTask>, usize)>,
        stealers: &[DequeStealer<ReadyTask>],
    ) -> Option<ReadyTask> {
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.lock().pop_front(),
            SchedulerPolicy::Lifo => self.lifo.lock().pop(),
            SchedulerPolicy::Priority => self.heap.lock().pop().map(|e| e.0),
            SchedulerPolicy::WorkStealing => {
                if let Some(t) = local.and_then(|(d, _)| d.pop()) {
                    return Some(t);
                }
                // A near-deadline task in the overflow heap outranks the
                // injector backlog — this is what lets a critical job's
                // tasks jump the queue under overload. Plain runs pay one
                // atomic load here.
                if self.overflow_is_urgent() {
                    if let Some(t) = self.pop_overflow() {
                        return Some(t);
                    }
                }
                let n = stealers.len();
                let k = self.injectors.len();
                let c = self.cluster_index(who);
                if let Some(t) = self.injectors[c].pop() {
                    return Some(t);
                }
                // Steal inside our own cluster first, starting after
                // ourselves to spread contention. Each probe claims up to
                // half the victim's queue in one CAS: the first task is
                // returned, the rest land on our own deque (spilling to
                // our cluster injector only if we are somehow full).
                // `Retry` means another thief holds the victim's claim
                // window — moving on to the next victim beats spinning
                // on a contended head word. A flat topology's single
                // cluster spans the whole pool, so this *is* the old
                // global sweep in that case.
                let (start, end) = self.topology.cluster_span(c, n);
                let width = end.saturating_sub(start);
                let ccell = &self.cluster_steals[c];
                for off in 1..width.max(1) {
                    let victim = start + (who - start + off) % width;
                    let cell = &self.victim_steals[victim % MAX_TRACKED_VICTIMS];
                    let mut extras = 0u64;
                    let got = {
                        let mut sink = |t: ReadyTask| {
                            extras += 1;
                            match local {
                                Some((d, _)) => {
                                    if let Err(t) = d.push(t) {
                                        self.injectors[c].push(t);
                                    }
                                }
                                None => self.injectors[c].push(t),
                            }
                        };
                        stealers[victim].steal_half_with(&mut sink)
                    };
                    match got {
                        Steal::Success(t) => {
                            self.steals_ok.fetch_add(1 + extras, Ordering::Relaxed);
                            cell.ok.fetch_add(1 + extras, Ordering::Relaxed);
                            ccell.intra_ok.fetch_add(1 + extras, Ordering::Relaxed);
                            if k > 1 {
                                self.balance_miss[who % MAX_TRACKED_VICTIMS]
                                    .store(0, Ordering::Relaxed);
                            }
                            self.trace(TraceEventKind::StealOk, t.id, t.slot, t.gen, victim as u64);
                            return Some(t);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => {
                            cell.empty.fetch_add(1, Ordering::Relaxed);
                            ccell.intra_empty.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Intra-cluster miss. After a few consecutive misses the
                // cluster is genuinely dry: escalate to the inter-cluster
                // balancer, which moves a *batch* from the fullest thing
                // it finds elsewhere (remote injector first, then a
                // steal-half of a remote deque). Single steals across
                // clusters are exactly the random-victim traffic this
                // refactor removes.
                if k > 1 {
                    let miss_cell = &self.balance_miss[who % MAX_TRACKED_VICTIMS];
                    let misses = miss_cell.fetch_add(1, Ordering::Relaxed) + 1;
                    if misses >= BALANCE_AFTER_MISSES {
                        if let Some(t) = self.balance_from_remote(c, local, stealers) {
                            miss_cell.store(0, Ordering::Relaxed);
                            return Some(t);
                        }
                    }
                }
                if n > 1 {
                    self.steals_empty.fetch_add(1, Ordering::Relaxed);
                    self.trace(TraceEventKind::StealEmpty, NO_TASK, 0, 0, n as u64);
                }
                // Steal-miss: consult the priority overflow heap.
                if self.overflow_len.load(Ordering::Acquire) > 0 {
                    return self.pop_overflow();
                }
                None
            }
            SchedulerPolicy::CriticalityAware { fast_workers } => {
                let fast = who < fast_workers;
                let (first, second) = if fast {
                    (&self.critical, &self.injectors[0])
                } else {
                    (&self.injectors[0], &self.critical)
                };
                first.pop().or_else(|| second.pop())
            }
        }
    }

    /// The inter-cluster balancer: called by a worker in cluster `c`
    /// whose own cluster has been dry for [`BALANCE_AFTER_MISSES`]
    /// consecutive sweeps. Visits the other clusters in ring order and
    /// migrates a *batch* of work home — up to [`BALANCE_BATCH`] tasks
    /// drained from a remote injector, or one steal-half claim from a
    /// remote deque (itself up to half that deque in one CAS). Returns
    /// the first migrated task; the rest land on the caller's deque.
    fn balance_from_remote(
        &self,
        c: usize,
        local: Option<(&WorkerDeque<ReadyTask>, usize)>,
        stealers: &[DequeStealer<ReadyTask>],
    ) -> Option<ReadyTask> {
        let k = self.injectors.len();
        let n = stealers.len();
        let ccell = &self.cluster_steals[c];
        for step in 1..k {
            let rc = (c + step) % k;
            // Spill parked on a remote injector is the cheapest thing to
            // migrate: no deque owner to race with.
            if let Some(first) = self.injectors[rc].pop() {
                let mut moved = 1u64;
                if let Some((d, _)) = local {
                    while (moved as usize) < BALANCE_BATCH {
                        match self.injectors[rc].pop() {
                            Some(t) => {
                                moved += 1;
                                if let Err(t) = d.push(t) {
                                    self.injectors[c].push(t);
                                }
                            }
                            None => break,
                        }
                    }
                }
                ccell.inter_ok.fetch_add(moved, Ordering::Relaxed);
                ccell.migrated.fetch_add(moved, Ordering::Relaxed);
                self.trace(
                    TraceEventKind::StealRemote,
                    first.id,
                    first.slot,
                    first.gen,
                    rc as u64,
                );
                return Some(first);
            }
            let (start, end) = self.topology.cluster_span(rc, n);
            for (victim, stealer) in stealers.iter().enumerate().take(end).skip(start) {
                let cell = &self.victim_steals[victim % MAX_TRACKED_VICTIMS];
                let mut extras = 0u64;
                let got = {
                    let mut sink = |t: ReadyTask| {
                        extras += 1;
                        match local {
                            Some((d, _)) => {
                                if let Err(t) = d.push(t) {
                                    self.injectors[c].push(t);
                                }
                            }
                            None => self.injectors[c].push(t),
                        }
                    };
                    stealer.steal_half_with(&mut sink)
                };
                match got {
                    Steal::Success(t) => {
                        self.steals_ok.fetch_add(1 + extras, Ordering::Relaxed);
                        cell.ok.fetch_add(1 + extras, Ordering::Relaxed);
                        ccell.inter_ok.fetch_add(1 + extras, Ordering::Relaxed);
                        ccell.migrated.fetch_add(1 + extras, Ordering::Relaxed);
                        self.trace(
                            TraceEventKind::StealRemote,
                            t.id,
                            t.slot,
                            t.gen,
                            victim as u64,
                        );
                        return Some(t);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => {
                        cell.empty.fetch_add(1, Ordering::Relaxed);
                        ccell.inter_empty.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        None
    }

    /// Best-effort emptiness check (for parking decisions).
    pub fn looks_empty(&self) -> bool {
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.lock().is_empty(),
            SchedulerPolicy::Lifo => self.lifo.lock().is_empty(),
            SchedulerPolicy::Priority => self.heap.lock().is_empty(),
            SchedulerPolicy::WorkStealing => {
                self.injectors.iter().all(|i| i.is_empty())
                    && self.overflow_len.load(Ordering::Acquire) == 0
            }
            SchedulerPolicy::CriticalityAware { .. } => {
                self.injectors[0].is_empty() && self.critical.is_empty()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(id: u32, priority: i32, critical: bool) -> ReadyTask {
        ReadyTask {
            id: TaskId(id),
            slot: 0,
            gen: 0,
            priority,
            critical,
            deadline_ns: NO_DEADLINE,
            home: NO_HOME,
            seq: 0,
            body: ExecBody::once(|| {}),
        }
    }

    fn rt_deadline(id: u32, deadline_ns: u64) -> ReadyTask {
        ReadyTask {
            deadline_ns,
            ..rt(id, 0, false)
        }
    }

    #[test]
    fn fifo_order() {
        let q = ReadyQueues::new(SchedulerPolicy::Fifo);
        q.push(rt(0, 0, false), None);
        q.push(rt(1, 0, false), None);
        q.push(rt(2, 0, false), None);
        let ids: Vec<u32> = (0..3).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(q.pop(0, None, &[]).is_none());
    }

    #[test]
    fn lifo_order() {
        let q = ReadyQueues::new(SchedulerPolicy::Lifo);
        for i in 0..3 {
            q.push(rt(i, 0, false), None);
        }
        let ids: Vec<u32> = (0..3).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![2, 1, 0]);
    }

    #[test]
    fn priority_order_with_fifo_ties() {
        let q = ReadyQueues::new(SchedulerPolicy::Priority);
        q.push(rt(0, 1, false), None);
        q.push(rt(1, 5, false), None);
        q.push(rt(2, 1, false), None);
        q.push(rt(3, 5, false), None);
        let ids: Vec<u32> = (0..4).map(|_| q.pop(0, None, &[]).unwrap().id.0).collect();
        assert_eq!(ids, vec![1, 3, 0, 2], "priority desc, FIFO within ties");
    }

    #[test]
    fn work_stealing_prefers_local_then_injector() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let local = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [local.stealer()];
        assert!(!q.push(rt(0, 0, false), None)); // goes to injector
        assert!(q.push(rt(1, 0, false), Some((&local, 0)))); // local
        let first = q.pop(0, Some((&local, 0)), &stealers).unwrap();
        assert_eq!(first.id.0, 1, "local deque first");
        let second = q.pop(0, Some((&local, 0)), &stealers).unwrap();
        assert_eq!(second.id.0, 0);
    }

    #[test]
    fn work_stealing_steals_from_sibling() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let w0 = WorkerDeque::new(WORKER_DEQUE_CAP);
        let w1 = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [w0.stealer(), w1.stealer()];
        q.push(rt(7, 0, false), Some((&w1, 1)));
        // Worker 0 has nothing local and the injector is empty: it must
        // steal worker 1's task.
        let got = q.pop(0, Some((&w0, 0)), &stealers).unwrap();
        assert_eq!(got.id.0, 7);
    }

    #[test]
    fn work_stealing_prioritised_tasks_served_on_steal_miss() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let local = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [local.stealer()];
        q.push(rt(0, 2, false), Some((&local, 0))); // prioritised: overflow heap
        q.push(rt(1, 5, false), Some((&local, 0)));
        q.push(rt(2, 0, false), Some((&local, 0))); // plain: local deque
        assert_eq!(q.overflow_len.load(Ordering::Relaxed), 2);
        // Plain local work first; on steal-miss the heap serves by
        // priority.
        let ids: Vec<u32> = (0..3)
            .map(|_| q.pop(0, Some((&local, 0)), &stealers).unwrap().id.0)
            .collect();
        assert_eq!(ids, vec![2, 1, 0]);
        assert!(q.looks_empty());
    }

    #[test]
    fn criticality_queue_routing() {
        let q = ReadyQueues::new(SchedulerPolicy::CriticalityAware { fast_workers: 1 });
        q.push(rt(0, 0, false), None);
        q.push(rt(1, 0, true), None);
        // Fast worker 0 sees the critical task first.
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 1);
        // Slow worker 1 sees the normal task.
        assert_eq!(q.pop(1, None, &[]).unwrap().id.0, 0);
        assert!(q.looks_empty());
    }

    #[test]
    fn criticality_slow_worker_falls_back_to_critical() {
        let q = ReadyQueues::new(SchedulerPolicy::CriticalityAware { fast_workers: 1 });
        q.push(rt(3, 0, true), None);
        // Nothing in the normal queue: the slow worker still takes the
        // critical task rather than idling.
        assert_eq!(q.pop(5, None, &[]).unwrap().id.0, 3);
    }

    #[test]
    fn overflow_heap_breaks_priority_ties_earliest_deadline_first() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        let local = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [local.stealer()];
        // Same explicit priority, different deadlines; plus one
        // deadline-free entry that must sort last within the tie.
        q.push(
            ReadyTask {
                deadline_ns: 900,
                ..rt(0, 3, false)
            },
            Some((&local, 0)),
        );
        q.push(
            ReadyTask {
                deadline_ns: 100,
                ..rt(1, 3, false)
            },
            Some((&local, 0)),
        );
        q.push(rt(2, 3, false), Some((&local, 0))); // NO_DEADLINE
        q.push(
            ReadyTask {
                deadline_ns: 500,
                ..rt(3, 3, false)
            },
            Some((&local, 0)),
        );
        let ids: Vec<u32> = (0..4)
            .map(|_| q.pop(0, Some((&local, 0)), &stealers).unwrap().id.0)
            .collect();
        assert_eq!(ids, vec![1, 3, 0, 2], "EDF within a priority tie");
    }

    #[test]
    fn near_deadline_task_jumps_the_injector_backlog() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        // A pile of plain work on the injector...
        for i in 0..8 {
            q.push(rt(i, 0, false), None);
        }
        // ...then a zero-priority task whose deadline is already urgent
        // (1ns past the epoch is long gone by now).
        q.push(rt_deadline(99, 1), None);
        assert_eq!(
            q.overflow_len.load(Ordering::Relaxed),
            1,
            "urgent task took the heap"
        );
        // With no local deque, the urgent task is served before the
        // injector backlog.
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 99);
        // The rest drain in injector order.
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 0);
    }

    #[test]
    fn far_deadline_tasks_stay_on_the_lock_free_path() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        // Deadline an hour out: must ride the injector, not the heap.
        let far = q.now_ns() + 3_600_000_000_000;
        q.push(rt_deadline(1, far), None);
        assert_eq!(q.overflow_len.load(Ordering::Relaxed), 0);
        assert_eq!(q.pop(0, None, &[]).unwrap().id.0, 1);
    }

    #[test]
    fn overflow_min_deadline_resets_when_the_heap_empties() {
        let q = ReadyQueues::new(SchedulerPolicy::WorkStealing);
        q.push(rt_deadline(1, 1), None);
        assert!(q.overflow_is_urgent());
        q.pop(0, None, &[]).unwrap();
        assert!(!q.overflow_is_urgent());
        assert_eq!(q.overflow_min_deadline.load(Ordering::Relaxed), NO_DEADLINE);
    }

    #[test]
    fn stamp_is_monotonic() {
        let q = ReadyQueues::new(SchedulerPolicy::Fifo);
        let a = q.stamp(rt(0, 0, false));
        let b = q.stamp(rt(1, 0, false));
        assert!(b.seq > a.seq);
    }

    #[test]
    fn external_push_routes_to_home_cluster_injector() {
        // Two clusters of one worker each; a task homed on cluster 1
        // must land on worker 1's injector, not wherever the round-robin
        // cursor points.
        let q = ReadyQueues::with_topology(SchedulerPolicy::WorkStealing, Topology::new(2, 1));
        let w0 = WorkerDeque::new(WORKER_DEQUE_CAP);
        let w1 = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [w0.stealer(), w1.stealer()];
        q.push(
            ReadyTask {
                home: 1,
                ..rt(42, 0, false)
            },
            None,
        );
        q.push(
            ReadyTask {
                home: 0,
                ..rt(7, 0, false)
            },
            None,
        );
        // Each worker finds its homed task on its own injector without
        // needing to steal or balance.
        assert_eq!(q.pop(1, Some((&w1, 1)), &stealers).unwrap().id.0, 42);
        assert_eq!(q.pop(0, Some((&w0, 0)), &stealers).unwrap().id.0, 7);
        assert!(q.looks_empty());
    }

    #[test]
    fn steal_sweep_stays_intra_cluster_until_balancer_arms() {
        // Two clusters of two workers; worker 3 (cluster 1) has work,
        // worker 0 (cluster 0) is dry. The intra sweep must not see it;
        // only after BALANCE_AFTER_MISSES consecutive misses does the
        // balancer cross over and migrate it.
        let q = ReadyQueues::with_topology(SchedulerPolicy::WorkStealing, Topology::new(2, 2));
        let deques: Vec<_> = (0..4)
            .map(|_| WorkerDeque::<ReadyTask>::new(WORKER_DEQUE_CAP))
            .collect();
        let stealers: Vec<_> = deques.iter().map(|d| d.stealer()).collect();
        q.push(rt(9, 0, false), Some((&deques[3], 3)));
        assert!(
            q.pop(0, Some((&deques[0], 0)), &stealers).is_none(),
            "first miss stays intra-cluster"
        );
        let got = q
            .pop(0, Some((&deques[0], 0)), &stealers)
            .expect("second miss arms the balancer");
        assert_eq!(got.id.0, 9);
        let pc = q.per_cluster_steals();
        assert_eq!(pc.len(), 2);
        assert_eq!(pc[0].inter_ok, 1, "migration attributed to the thief");
        assert_eq!(pc[0].migrated, 1);
        assert_eq!(pc[1].inter_ok, 0);
        assert!(pc[0].intra_empty > 0, "intra probes missed first");
    }

    #[test]
    fn balancer_drains_remote_injector_in_batches() {
        // Two single-worker clusters: five tasks homed on cluster 1 pile
        // up on its injector while its worker is absent. Worker 0's
        // balancer must bring the whole batch home, not one task.
        let q = ReadyQueues::with_topology(SchedulerPolicy::WorkStealing, Topology::new(2, 1));
        let w0 = WorkerDeque::new(WORKER_DEQUE_CAP);
        let w1 = WorkerDeque::new(WORKER_DEQUE_CAP);
        let stealers = [w0.stealer(), w1.stealer()];
        for i in 0..5 {
            q.push(
                ReadyTask {
                    home: 1,
                    ..rt(i, 0, false)
                },
                None,
            );
        }
        // Single-worker cluster: the intra sweep has no victims, so each
        // dry pop counts one miss.
        assert!(q.pop(0, Some((&w0, 0)), &stealers).is_none());
        let first = q
            .pop(0, Some((&w0, 0)), &stealers)
            .expect("balancer drains the remote injector");
        assert_eq!(first.id.0, 0, "injector order preserved");
        // The remaining four came along in the same visit and now sit on
        // worker 0's own deque.
        for _ in 1..5 {
            assert!(w0.pop().is_some());
        }
        assert!(w0.pop().is_none());
        let pc = q.per_cluster_steals();
        assert_eq!(pc[0].migrated, 5, "batch moved in one balance visit");
        assert!(q.looks_empty());
    }
}
