//! Always-on flight recorder: a tiny per-worker ring of recent trace
//! events, kept at a fraction of the full tracer's rate, so a fault
//! has a post-mortem even when nobody asked for a trace.
//!
//! The recorder reuses the 32-byte POD [`TraceEvent`] format but none
//! of the tracer's machinery: rings are small (a few KiB per worker),
//! writes are sampled (1 in 16 task starts/completes; faults, skips,
//! retries and poisons always), and timestamps are plain
//! `Instant`-based nanoseconds since the runtime epoch — the rare-write
//! path doesn't warrant the tracer's raw-TSC clock.
//!
//! A trigger (worker death, deadline miss, detected uncorrectable
//! error, drain timeout, or a sampler [`Anomaly`](crate::telemetry::Anomaly))
//! calls [`FlightRecorder::request_dump`], which snapshots every ring
//! into a pending [`FlightDump`]. The runtime later materialises dumps
//! into [`FlightBundle`]s — `{telemetry snapshot JSON, last-N events as
//! Chrome trace, contention report}` — via
//! [`Runtime::take_flight_bundles`](crate::Runtime::take_flight_bundles).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::task::TaskId;
use crate::trace::{TraceEvent, TraceEventKind};

/// Events kept per worker ring. 256 × 32 B = 8 KiB per worker — enough
/// history to see the seconds before a fault, small enough to capture
/// on every trigger without a hiccup.
pub const FLIGHT_RING_CAP: usize = 256;

/// Keep 1 in `SAMPLE_MASK + 1` task start/complete pairs.
const SAMPLE_MASK: u32 = 0xF;

/// Pending dumps are bounded; a trigger storm (every overdue job calls
/// the reaper) keeps the first few and counts the rest. Rare faults
/// outrank stormy triggers: a full queue evicts its oldest
/// lower-severity capture rather than dropping a worker death (see
/// [`FlightReason::severity`]).
const MAX_PENDING_DUMPS: usize = 8;

/// Why a dump was captured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlightReason {
    /// A worker thread died (panicked through the task harness or was
    /// killed by fault injection) and its deque was drained.
    WorkerDeath { worker: usize },
    /// The reaper found a job past its deadline.
    DeadlineMiss { job: String },
    /// A detected uncorrectable error poisoned a region.
    HardwareFault { region: String },
    /// `drain` hit its grace deadline and forced termination.
    DrainTimeout,
    /// The background sampler's trigger rules fired.
    Anomaly { rule: &'static str },
}

impl FlightReason {
    pub fn label(&self) -> &'static str {
        match self {
            FlightReason::WorkerDeath { .. } => "worker-death",
            FlightReason::DeadlineMiss { .. } => "deadline-miss",
            FlightReason::HardwareFault { .. } => "hardware-fault",
            FlightReason::DrainTimeout => "drain-timeout",
            FlightReason::Anomaly { .. } => "anomaly",
        }
    }

    /// Storm resistance class: how likely this trigger is to fire many
    /// times in one incident, and therefore how expendable its capture
    /// is when the pending queue fills. Sampler anomalies re-fire every
    /// tick (0); under overload *every* overdue tenant is a deadline
    /// miss (1); worker deaths, detected uncorrectable errors and drain
    /// timeouts are one-shot faults (2).
    fn severity(&self) -> u8 {
        match self {
            FlightReason::Anomaly { .. } => 0,
            FlightReason::DeadlineMiss { .. } => 1,
            FlightReason::WorkerDeath { .. }
            | FlightReason::HardwareFault { .. }
            | FlightReason::DrainTimeout => 2,
        }
    }

    /// Free-form detail string for exports.
    pub fn detail(&self) -> String {
        match self {
            FlightReason::WorkerDeath { worker } => format!("worker {worker}"),
            FlightReason::DeadlineMiss { job } => job.clone(),
            FlightReason::HardwareFault { region } => region.clone(),
            FlightReason::DrainTimeout => String::new(),
            FlightReason::Anomaly { rule } => (*rule).to_string(),
        }
    }
}

/// A captured (not yet materialised) dump: the reason plus every ring's
/// recent events, one track per worker with the external track last.
#[derive(Clone, Debug)]
pub struct FlightDump {
    pub reason: FlightReason,
    /// Capture time, ns since the recorder's epoch.
    pub at_ns: u64,
    /// Per-track events in ring (oldest-first) order.
    pub tracks: Vec<Vec<TraceEvent>>,
}

impl FlightDump {
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|t| t.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A materialised post-mortem bundle.
#[derive(Clone, Debug)]
pub struct FlightBundle {
    pub reason: FlightReason,
    /// Capture time, ns since the recorder's epoch.
    pub at_ns: u64,
    /// Events in the Chrome trace.
    pub events: usize,
    /// [`telemetry_json`](crate::export::telemetry_json) of the
    /// snapshot taken at materialisation time.
    pub snapshot_json: String,
    /// The ring contents as Chrome Trace Event Format JSON.
    pub trace_json: String,
    /// Human-readable contention report at materialisation time.
    pub contention: String,
}

/// One worker's bounded event ring.
#[derive(Default)]
struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position once the ring has wrapped.
    next: usize,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < FLIGHT_RING_CAP {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % FLIGHT_RING_CAP;
    }

    /// Contents oldest-first.
    fn drained(&self) -> Vec<TraceEvent> {
        if self.buf.len() < FLIGHT_RING_CAP {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(FLIGHT_RING_CAP);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

/// The recorder: `workers + 1` rings (external threads share the last
/// one). Each ring has its own mutex; a writer only ever touches its
/// own worker's ring, so the lock is uncontended in steady state — and
/// writes are sampled on top of that.
pub struct FlightRecorder {
    workers: usize,
    epoch: Instant,
    rings: Vec<Mutex<Ring>>,
    pending: Mutex<Vec<FlightDump>>,
    dumps_requested: AtomicU64,
    dumps_dropped: AtomicU64,
}

impl FlightRecorder {
    pub(crate) fn new(workers: usize) -> Self {
        FlightRecorder {
            workers,
            epoch: Instant::now(),
            rings: (0..=workers).map(|_| Mutex::new(Ring::default())).collect(),
            pending: Mutex::new(Vec::new()),
            dumps_requested: AtomicU64::new(0),
            dumps_dropped: AtomicU64::new(0),
        }
    }

    /// Whether a high-rate event for this task is kept this time.
    #[inline]
    pub(crate) fn sampled(task: TaskId) -> bool {
        task.0 & SAMPLE_MASK == 0
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Append an event to the calling thread's ring.
    pub(crate) fn record(&self, kind: TraceEventKind, task: TaskId, slot: u32, gen: u64, arg: u64) {
        let w = match crate::pool::current_worker() {
            Some(w) if w < self.workers => w,
            _ => self.workers,
        };
        let ev = TraceEvent {
            ts_ns: self.now_ns(),
            task,
            slot,
            gen: gen as u32,
            arg: arg as u32,
            worker: w as u32,
            kind,
        };
        if let Ok(mut ring) = self.rings[w].lock() {
            ring.push(ev);
        }
    }

    /// Capture every ring into a pending dump. Cheap enough to call
    /// from fault paths: bounded copies under per-ring locks.
    pub(crate) fn request_dump(&self, reason: FlightReason) {
        self.dumps_requested.fetch_add(1, Ordering::Relaxed);
        let at_ns = self.now_ns();
        let mut pending = match self.pending.lock() {
            Ok(p) => p,
            Err(_) => return,
        };
        if pending.len() >= MAX_PENDING_DUMPS {
            // Evict the oldest strictly-less-severe capture so a storm
            // of sampler anomalies or reaped tenants cannot crowd out
            // the post-mortem for an actual worker death.
            match pending
                .iter()
                .position(|d| d.reason.severity() < reason.severity())
            {
                Some(pos) => {
                    pending.remove(pos);
                    self.dumps_dropped.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    self.dumps_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        let tracks = self
            .rings
            .iter()
            .map(|r| r.lock().map(|g| g.drained()).unwrap_or_default())
            .collect();
        pending.push(FlightDump {
            reason,
            at_ns,
            tracks,
        });
    }

    /// Remove and return every pending dump.
    pub(crate) fn take_dumps(&self) -> Vec<FlightDump> {
        self.pending
            .lock()
            .map(|mut p| std::mem::take(&mut *p))
            .unwrap_or_default()
    }

    /// Dumps requested so far (including any dropped to the pending
    /// bound).
    pub fn dump_count(&self) -> u64 {
        self.dumps_requested.load(Ordering::Relaxed)
    }

    pub fn dumps_dropped(&self) -> u64 {
        self.dumps_dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_drains_oldest_first() {
        let mut ring = Ring::default();
        let mk = |i: u64| TraceEvent {
            ts_ns: i,
            task: TaskId(i as u32),
            slot: 0,
            gen: 0,
            arg: 0,
            worker: 0,
            kind: TraceEventKind::Start,
        };
        for i in 0..(FLIGHT_RING_CAP as u64 + 10) {
            ring.push(mk(i));
        }
        let out = ring.drained();
        assert_eq!(out.len(), FLIGHT_RING_CAP);
        assert_eq!(out.first().unwrap().ts_ns, 10, "oldest surviving event");
        assert_eq!(out.last().unwrap().ts_ns, FLIGHT_RING_CAP as u64 + 9);
        for pair in out.windows(2) {
            assert!(pair[0].ts_ns < pair[1].ts_ns);
        }
    }

    #[test]
    fn sampling_keeps_one_in_sixteen() {
        let kept = (0u32..4096)
            .filter(|&i| FlightRecorder::sampled(TaskId(i)))
            .count();
        assert_eq!(kept, 4096 / 16);
        assert!(FlightRecorder::sampled(TaskId(0)));
        assert!(!FlightRecorder::sampled(TaskId(1)));
    }

    #[test]
    fn dumps_are_bounded_and_counted() {
        let fr = FlightRecorder::new(2);
        fr.record(TraceEventKind::Fault, TaskId(7), 1, 2, 3);
        for _ in 0..20 {
            fr.request_dump(FlightReason::DrainTimeout);
        }
        assert_eq!(fr.dump_count(), 20);
        assert_eq!(fr.dumps_dropped(), 20 - 8);
        let dumps = fr.take_dumps();
        assert_eq!(dumps.len(), 8);
        assert!(dumps.iter().all(|d| d.len() == 1));
        assert!(fr.take_dumps().is_empty(), "take drains");
        // After draining, new requests are captured again.
        fr.request_dump(FlightReason::WorkerDeath { worker: 0 });
        let dumps = fr.take_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].reason.label(), "worker-death");
    }

    #[test]
    fn faults_evict_stormy_captures_when_full() {
        let fr = FlightRecorder::new(1);
        for _ in 0..MAX_PENDING_DUMPS {
            fr.request_dump(FlightReason::Anomaly { rule: "shed-spike" });
        }
        for _ in 0..3 {
            fr.request_dump(FlightReason::DeadlineMiss { job: "late".into() });
        }
        fr.request_dump(FlightReason::WorkerDeath { worker: 0 });
        // One eviction per over-capacity request.
        assert_eq!(fr.dumps_dropped(), 4);
        let dumps = fr.take_dumps();
        assert_eq!(dumps.len(), MAX_PENDING_DUMPS);
        assert!(
            dumps
                .iter()
                .any(|d| d.reason == FlightReason::WorkerDeath { worker: 0 }),
            "the worker death survived the storm"
        );
        assert_eq!(
            dumps
                .iter()
                .filter(|d| matches!(d.reason, FlightReason::DeadlineMiss { .. }))
                .count(),
            3
        );
        // A storm of equal severity cannot evict an actual fault.
        for _ in 0..MAX_PENDING_DUMPS + 1 {
            fr.request_dump(FlightReason::DeadlineMiss { job: "late".into() });
        }
        fr.request_dump(FlightReason::Anomaly { rule: "wake-storm" });
        let dumps = fr.take_dumps();
        assert!(dumps
            .iter()
            .all(|d| matches!(d.reason, FlightReason::DeadlineMiss { .. })));
    }
}
