//! Cluster topology: the two-level scheduling map shared by the real
//! pool and the schedule simulator.
//!
//! The paper's target machine (Fig. 1) is not a flat sea of cores but a
//! tiled hierarchy: clusters of cores around local memory (SPM / an LLC
//! slice), clusters stitched together by a slower interconnect. Myrmics
//! and BDDT-SCC (see PAPERS.md) both found that flat work stealing
//! collapses on such machines — every steal probe is a potential
//! cross-chip miss — and that the surviving shape is *hierarchical*:
//! steal within your cluster first, balance between clusters rarely and
//! in batches.
//!
//! [`Topology`] is the pure data: how many clusters, how many workers
//! each. The real scheduler ([`crate::scheduler::ReadyQueues`]) uses it
//! to bound steal sweeps and route external pushes; the simulator
//! ([`crate::simsched::ScheduleSimulator`]) consumes the same numbers
//! through the [`ClusterSchedule`] trait, so flat-vs-hierarchical is an
//! A/B switch over one shared vocabulary instead of two diverging
//! policies.

use std::fmt;

/// Sentinel for "no home cluster declared" (task touches no regions, or
/// the topology is flat).
pub const NO_HOME: u32 = u32::MAX;

/// A two-level worker map: `clusters × workers_per_cluster` workers.
///
/// `flat(n)` — one cluster spanning everything — is the degenerate case
/// every pre-hierarchy code path reduces to: intra-cluster stealing
/// sweeps the whole pool, the balancer never runs, and home-cluster
/// routing collapses to injector 0.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    pub clusters: usize,
    pub workers_per_cluster: usize,
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.clusters, self.workers_per_cluster)
    }
}

impl Topology {
    /// `clusters` clusters of `workers_per_cluster` workers each.
    pub fn new(clusters: usize, workers_per_cluster: usize) -> Self {
        assert!(clusters >= 1, "need at least one cluster");
        assert!(
            workers_per_cluster >= 1,
            "need at least one worker per cluster"
        );
        Topology {
            clusters,
            workers_per_cluster,
        }
    }

    /// The flat (single-cluster) topology over `workers` workers.
    pub fn flat(workers: usize) -> Self {
        Topology {
            clusters: 1,
            workers_per_cluster: workers.max(1),
        }
    }

    /// Total workers the topology describes.
    pub fn workers(&self) -> usize {
        self.clusters * self.workers_per_cluster
    }

    /// Cluster of worker `who`. Workers beyond `workers()` (possible
    /// when a topology is paired with a larger ad-hoc pool in tests)
    /// fold into the last cluster.
    #[inline]
    pub fn cluster_of(&self, who: usize) -> usize {
        (who / self.workers_per_cluster).min(self.clusters - 1)
    }

    /// The half-open worker range `[start, end)` of cluster `c` in a
    /// pool of `n` workers. The last cluster absorbs any remainder, and
    /// a flat topology always spans the whole pool — so sweeps bounded
    /// by this never strand a worker outside every cluster.
    #[inline]
    pub fn cluster_span(&self, c: usize, n: usize) -> (usize, usize) {
        if self.clusters <= 1 {
            return (0, n);
        }
        let start = (c * self.workers_per_cluster).min(n);
        let end = if c + 1 >= self.clusters {
            n
        } else {
            ((c + 1) * self.workers_per_cluster).min(n)
        };
        (start, end)
    }

    /// Home cluster for a data key (a region id, or an SPM-range index):
    /// deterministic block-cyclic assignment of data onto clusters — the
    /// simulated NUMA/tile map. The real scheduler routes a task's
    /// external push to this cluster's injector; the simulator biases
    /// placement the same way.
    #[inline]
    pub fn home_cluster(&self, key: u64) -> usize {
        (key % self.clusters as u64) as usize
    }
}

/// Virtual-time costs of the stealing machinery, charged by the
/// simulator when a [`ClusterSchedule`] is installed. All in the same
/// virtual time units as task costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StealCosts {
    /// Cost of probing one doubling of the steal domain: a task
    /// dispatched on a machine where thieves scan `d` victims pays
    /// `probe_cost · log2(d)` before it starts. This is the Myrmics
    /// observation in one number — flat stealing's probe domain is the
    /// whole machine, so its dispatch overhead grows with the core
    /// count, while a cluster-bounded thief pays for its cluster only.
    pub probe_cost: f64,
    /// Charged when a task's preferred cluster is fully busy and the
    /// balancer migrates it to another cluster (batched in the real
    /// runtime, so per-task it is small).
    pub migrate_cost: f64,
}

impl Default for StealCosts {
    fn default() -> Self {
        StealCosts {
            probe_cost: 1.0,
            migrate_cost: 0.0,
        }
    }
}

/// The policy half of two-level scheduling, shared by both engines:
/// how far a thief probes, where a task would rather run, and what a
/// cross-cluster edge costs. [`FlatSchedule`] and
/// [`HierarchicalSchedule`] describe the *same physical machine* (same
/// cluster map, same interconnect penalty) — they differ only in
/// whether the scheduler is allowed to see it.
pub trait ClusterSchedule: Send + Sync {
    /// The physical cluster map.
    fn topology(&self) -> Topology;

    /// Number of victims a thief on `core` scans before giving up.
    fn probe_domain(&self, core: usize) -> usize;

    /// Preferred cluster given per-cluster affinity weights (e.g.
    /// cost-weighted predecessor placements). `None` = no preference.
    fn preferred_cluster(&self, weight_by_cluster: &[u64]) -> Option<usize>;

    /// Multiplier on the communication cost of an edge whose producer
    /// ran on `from` and consumer runs on `to`.
    fn comm_factor(&self, from: usize, to: usize) -> f64;
}

/// Cluster-blind scheduling on a clustered machine: thieves probe the
/// whole pool, placement ignores the cluster map, and cross-cluster
/// edges still pay the interconnect (the machine does not get flatter
/// because the scheduler pretends it is).
#[derive(Clone, Copy, Debug)]
pub struct FlatSchedule {
    pub topo: Topology,
    /// Communication multiplier for cross-cluster edges (≥ 1.0).
    pub inter_penalty: f64,
}

impl ClusterSchedule for FlatSchedule {
    fn topology(&self) -> Topology {
        self.topo
    }

    fn probe_domain(&self, _core: usize) -> usize {
        self.topo.workers()
    }

    fn preferred_cluster(&self, _weight_by_cluster: &[u64]) -> Option<usize> {
        None
    }

    fn comm_factor(&self, from: usize, to: usize) -> f64 {
        if self.topo.cluster_of(from) == self.topo.cluster_of(to) {
            1.0
        } else {
            self.inter_penalty
        }
    }
}

/// Two-level scheduling on the same machine: thieves probe their own
/// cluster, placement prefers the cluster holding the task's inputs,
/// and only the (rare, batched) balancer crosses clusters. With
/// `clusters == 1` every method degenerates to [`FlatSchedule`]'s
/// answer, which is the equivalence the simulator tests pin down.
#[derive(Clone, Copy, Debug)]
pub struct HierarchicalSchedule {
    pub topo: Topology,
    /// Communication multiplier for cross-cluster edges (≥ 1.0).
    pub inter_penalty: f64,
}

impl ClusterSchedule for HierarchicalSchedule {
    fn topology(&self) -> Topology {
        self.topo
    }

    fn probe_domain(&self, _core: usize) -> usize {
        self.topo.workers_per_cluster
    }

    fn preferred_cluster(&self, weight_by_cluster: &[u64]) -> Option<usize> {
        let (best, &w) = weight_by_cluster
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        if w == 0 {
            return None;
        }
        Some(best)
    }

    fn comm_factor(&self, from: usize, to: usize) -> f64 {
        if self.topo.cluster_of(from) == self.topo.cluster_of(to) {
            1.0
        } else {
            self.inter_penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_cluster_spanning_everything() {
        let t = Topology::flat(7);
        assert_eq!(t.clusters, 1);
        assert_eq!(t.workers(), 7);
        assert_eq!(t.cluster_of(0), 0);
        assert_eq!(t.cluster_of(6), 0);
        assert_eq!(t.cluster_span(0, 7), (0, 7));
        // Even when paired with a differently sized pool, flat spans it.
        assert_eq!(t.cluster_span(0, 3), (0, 3));
    }

    #[test]
    fn cluster_of_blocks_workers() {
        let t = Topology::new(4, 8);
        assert_eq!(t.workers(), 32);
        assert_eq!(t.cluster_of(0), 0);
        assert_eq!(t.cluster_of(7), 0);
        assert_eq!(t.cluster_of(8), 1);
        assert_eq!(t.cluster_of(31), 3);
        // Out-of-range workers fold into the last cluster.
        assert_eq!(t.cluster_of(99), 3);
    }

    #[test]
    fn spans_cover_the_pool_without_gaps() {
        let t = Topology::new(3, 4);
        // Exact pool.
        let spans: Vec<_> = (0..3).map(|c| t.cluster_span(c, 12)).collect();
        assert_eq!(spans, vec![(0, 4), (4, 8), (8, 12)]);
        // Smaller pool: trailing clusters clamp, the union is still the
        // whole pool.
        let spans: Vec<_> = (0..3).map(|c| t.cluster_span(c, 10)).collect();
        assert_eq!(spans, vec![(0, 4), (4, 8), (8, 10)]);
        // Larger pool: the last cluster absorbs the remainder.
        assert_eq!(t.cluster_span(2, 20), (8, 20));
    }

    #[test]
    fn home_cluster_is_block_cyclic() {
        let t = Topology::new(4, 2);
        assert_eq!(t.home_cluster(0), 0);
        assert_eq!(t.home_cluster(5), 1);
        assert_eq!(t.home_cluster(7), 3);
        assert_eq!(Topology::flat(8).home_cluster(5), 0);
    }

    #[test]
    fn single_cluster_hierarchy_answers_like_flat() {
        // The simsched equivalence test relies on this degeneracy.
        let topo = Topology::new(1, 16);
        let flat = FlatSchedule {
            topo,
            inter_penalty: 4.0,
        };
        let hier = HierarchicalSchedule {
            topo,
            inter_penalty: 4.0,
        };
        assert_eq!(flat.probe_domain(3), hier.probe_domain(3));
        assert_eq!(hier.preferred_cluster(&[0]), None);
        // A non-zero weight prefers the only cluster, which contains
        // every core — the same pick flat's "no preference" makes.
        assert_eq!(hier.preferred_cluster(&[10]), Some(0));
        for (a, b) in [(0, 5), (3, 15)] {
            assert_eq!(flat.comm_factor(a, b), 1.0);
            assert_eq!(hier.comm_factor(a, b), 1.0);
        }
    }

    #[test]
    fn hierarchical_prefers_heaviest_cluster_lowest_index_ties() {
        let h = HierarchicalSchedule {
            topo: Topology::new(4, 8),
            inter_penalty: 4.0,
        };
        assert_eq!(h.preferred_cluster(&[0, 5, 9, 9]), Some(2));
        assert_eq!(h.preferred_cluster(&[0, 0, 0, 0]), None);
        assert_eq!(h.probe_domain(0), 8);
        assert_eq!(h.comm_factor(0, 7), 1.0, "same cluster");
        assert_eq!(h.comm_factor(0, 8), 4.0, "cross cluster");
    }
}
