//! The multi-tenant job layer: per-job fault domains over one runtime.
//!
//! A long-lived [`crate::Runtime`] absorbs many workloads at once. Each
//! workload is a *job*: submitted via `Runtime::submit(JobSpec)`, it owns
//! its own **fault domain** — a private retry policy, fault-injection
//! plan, observer session, failure list and poisoned-region set — so one
//! misbehaving tenant can neither poison nor starve another. Isolation is
//! carried through the lock-free slab/deque hot path by tagging each
//! task's slot with an `Arc<JobState>` and namespacing the dependency
//! tracker with the generation-counted [`JobId`] (see `deps.rs`): two
//! jobs touching the same [`crate::Region`] neither serialise nor
//! exchange poison.
//!
//! On top of isolation sits the service-robustness layer:
//!
//! * **admission control** — bounded in-flight tasks per job
//!   ([`JobSpec::max_in_flight`]) and globally
//!   (`RuntimeConfig::max_in_flight`): `TaskBuilder::try_spawn` returns
//!   [`AdmissionError::Busy`] at the cap, `spawn` blocks until capacity
//!   frees up;
//! * **load shedding** — [`crate::QosClass::BestEffort`] jobs drop tasks
//!   once the global in-flight count reaches the configured shed
//!   watermark, protecting guaranteed tenants;
//! * **graceful lifecycle** — `Runtime::drain(timeout)` walks the
//!   Running → Draining → Drained state machine: stop admitting jobs,
//!   let in-flight work finish, cancel what remains, and force worker
//!   shutdown only if the deadline is about to pass.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::fault::{FaultPlan, FaultReport, RetryPolicy, TaskFailure};
use crate::region::Region;
use crate::scheduler::QosClass;
use crate::stats::{Striped64, StripedGauge, JOB_COUNTER_STRIPES};

/// Per-job monotonic counter: fewer stripes than the runtime-global
/// counters, so short-lived (per-request) jobs stay cheap to allocate.
type JobCounter = Striped64<JOB_COUNTER_STRIPES>;
type JobGauge = StripedGauge<JOB_COUNTER_STRIPES>;
use crate::task::TaskId;
use crate::trace::TraceSession;

/// Generation-counted job identifier: `index` addresses a slot in the
/// runtime's job table, `gen` disambiguates reuse of that slot — a stale
/// `JobId` held after its job retired can never alias a later tenant.
/// `key()` is the 64-bit value used to namespace dependency-tracker
/// state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId {
    pub index: u32,
    pub gen: u32,
}

impl JobId {
    /// The implicit job behind `Runtime::task` / `Runtime::try_taskwait`.
    pub const DEFAULT: JobId = JobId { index: 0, gen: 0 };

    /// The dependency-namespace key: unique across slot reuse.
    pub fn key(&self) -> u64 {
        ((self.index as u64) << 32) | self.gen as u64
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}.{}", self.index, self.gen)
    }
}

/// Parameters of a job submission. Everything is optional: a default
/// spec inherits the runtime's retry policy, fault plan and observer,
/// runs at [`QosClass::Guaranteed`] and has no per-job in-flight cap.
#[derive(Clone, Default)]
pub struct JobSpec {
    /// Human-readable job label (diagnostics and failure reports).
    pub label: String,
    /// Quality-of-service class (admission + scheduling; see
    /// [`QosClass`]).
    pub qos: QosClass,
    /// Per-job retry policy; `None` inherits the runtime's.
    pub retry: Option<RetryPolicy>,
    /// Per-job fault-injection plan applied to this job's task attempts;
    /// `None` inherits the runtime's. Worker kills remain pool-scoped —
    /// a per-job plan's `kill_worker` entries never fire.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Per-job execution observer; `None` inherits the runtime's.
    pub observer: Option<Arc<dyn crate::runtime::TaskObserver>>,
    /// Cap on this job's in-flight (admitted, unsettled) tasks.
    pub max_in_flight: Option<usize>,
    /// Relative completion deadline, measured from submission. For
    /// [`QosClass::Guaranteed`] jobs the deadline drives EDF scheduling
    /// (near-deadline tasks jump the ready backlog); for
    /// [`QosClass::BestEffort`] jobs the runtime's deadline reaper
    /// cancels the job once the deadline passes — remaining tasks settle
    /// as recorded skips and the miss shows in [`JobMetrics`].
    pub deadline: Option<Duration>,
    /// Expected per-task runtime hint in nanoseconds. Consumed by the
    /// straggler detector: a task is only hedged once it has run for
    /// `max(soft_timeout, 4 * cost_hint)`.
    pub cost_hint: Option<u64>,
}

impl JobSpec {
    pub fn new(label: impl Into<String>) -> Self {
        JobSpec {
            label: label.into(),
            ..Default::default()
        }
    }

    /// Builder-style QoS class.
    pub fn qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Builder-style per-job retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Builder-style per-job fault-injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Builder-style per-job observer.
    pub fn observer(mut self, obs: Arc<dyn crate::runtime::TaskObserver>) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Builder-style per-job in-flight task cap (>= 1).
    pub fn max_in_flight(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "a zero cap would admit nothing");
        self.max_in_flight = Some(cap);
        self
    }

    /// Builder-style relative completion deadline (from submission).
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Builder-style expected per-task runtime hint (nanoseconds).
    pub fn cost_hint(mut self, ns: u64) -> Self {
        self.cost_hint = Some(ns);
        self
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("label", &self.label)
            .field("qos", &self.qos)
            .field("retry", &self.retry)
            .field("fault_plan", &self.fault_plan.is_some())
            .field("observer", &self.observer.is_some())
            .field("max_in_flight", &self.max_in_flight)
            .field("deadline", &self.deadline)
            .field("cost_hint", &self.cost_hint)
            .finish()
    }
}

/// Why a submission (of a job, or of a task into a job) was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// An in-flight cap (per-job or global) or the job-count cap is
    /// reached. Retry later, or use the blocking `spawn`.
    Busy,
    /// A best-effort task was load-shed at the global shed watermark.
    Shed,
    /// The runtime is draining (or drained): no new work is admitted.
    Draining,
    /// The target job was cancelled.
    Cancelled,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Busy => f.write_str("admission cap reached"),
            AdmissionError::Shed => f.write_str("best-effort task shed under load"),
            AdmissionError::Draining => f.write_str("runtime is draining"),
            AdmissionError::Cancelled => f.write_str("job was cancelled"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// What `Runtime::drain` accomplished within its timeout.
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// In-flight work did not quiesce before the deadline.
    pub timed_out: bool,
    /// The pool was shut down with work still in flight (phase 3).
    pub forced: bool,
    /// Jobs cancelled by the drain (phase 2).
    pub cancelled_jobs: usize,
    /// Outstanding tasks at exit (non-zero only when forced).
    pub outstanding_at_exit: u64,
    /// Wall-clock time the drain took.
    pub elapsed: Duration,
}

impl DrainReport {
    /// True when every task finished gracefully: nothing was cancelled
    /// or abandoned.
    pub fn clean(&self) -> bool {
        !self.timed_out && !self.forced && self.cancelled_jobs == 0
    }
}

/// Per-job counters, snapshotted by `JobHandle::job_stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Tasks admitted into this job.
    pub spawned: u64,
    /// Tasks settled (success or failure).
    pub completed: u64,
    /// Tasks settled as failed (panicked, poisoned or cancelled).
    pub failed: u64,
    /// Tasks currently admitted but not settled.
    pub in_flight: u64,
    /// High-water mark of `in_flight` (admission-cap diagnostics).
    pub in_flight_hwm: u64,
}

/// Serving-oriented per-job snapshot, from `JobHandle::metrics`. Where
/// [`JobStats`] counts raw admissions, this derives the quantities an
/// SLO dashboard wants: queue depth, run depth, shed volume and
/// admission queue delay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobMetrics {
    /// Admitted tasks not yet dispatched to a worker.
    pub queued: u64,
    /// Tasks dispatched at least once and not yet settled.
    pub running: u64,
    /// Tasks settled (success or failure).
    pub completed: u64,
    /// Tasks settled as failed (panicked, poisoned or cancelled).
    pub failed: u64,
    /// Admissions refused by load shedding (watermark or adaptive
    /// controller).
    pub shed: u64,
    /// Tasks admitted into the job.
    pub spawned: u64,
    /// Mean admission→first-dispatch delay over dispatched tasks.
    pub queue_delay_avg: Duration,
    /// Worst admission→first-dispatch delay seen.
    pub queue_delay_max: Duration,
    /// Median admission→first-dispatch delay, from the telemetry
    /// plane's per-job log-bucketed histogram (bucket upper bound;
    /// zero when telemetry is disabled).
    pub queue_delay_p50: Duration,
    /// 99th-percentile admission→first-dispatch delay (telemetry only).
    pub queue_delay_p99: Duration,
    /// Median task body execution time (telemetry only).
    pub body_p50: Duration,
    /// 99th-percentile task body execution time (telemetry only).
    pub body_p99: Duration,
    /// The job blew its [`JobSpec::deadline`] (best-effort jobs are
    /// reaped when this happens; guaranteed jobs only get the mark).
    pub deadline_missed: bool,
}

/// A region range contaminated by a failed writer (scoped to one job's
/// fault domain).
#[derive(Clone)]
pub(crate) struct PoisonedRegion {
    pub(crate) region: Region,
    pub(crate) source: TaskId,
    pub(crate) source_label: String,
}

/// Remove `w` from the poison list (a task overwrites the range, making
/// its previous contents irrelevant). Partial overlaps leave the
/// uncovered remainder poisoned.
pub(crate) fn cleanse(poisoned: &mut Vec<PoisonedRegion>, w: &Region) {
    let mut i = 0;
    while i < poisoned.len() {
        if !poisoned[i].region.overlaps(w) {
            i += 1;
            continue;
        }
        let entry = poisoned.swap_remove(i);
        // Remainders lie outside `w`, so they can never match it again
        // when the scan reaches them.
        if entry.region.range.start < w.range.start {
            let mut left = entry.clone();
            left.region.range.end = w.range.start;
            poisoned.push(left);
        }
        if entry.region.range.end > w.range.end {
            let mut right = entry;
            right.region.range.start = w.range.end;
            poisoned.push(right);
        }
        // Do not advance: swap_remove moved a new element into slot `i`.
    }
}

/// One job's shared state: its fault domain (retry policy, fault plan,
/// failures, poison) plus the admission/join accounting. Tasks hold an
/// `Arc` to it through their slab slot, so the state outlives the handle
/// while work is in flight.
pub(crate) struct JobState {
    pub(crate) id: JobId,
    pub(crate) label: String,
    pub(crate) qos: QosClass,
    pub(crate) retry: RetryPolicy,
    /// Injection plan for this job's task attempts (worker kills stay
    /// pool-scoped).
    pub(crate) fault_plan: Option<Arc<FaultPlan>>,
    /// Tracer + per-job observer fan-out captured by this job's bodies.
    pub(crate) session: Arc<TraceSession>,
    pub(crate) max_in_flight: Option<usize>,
    /// Absolute completion deadline, fixed at submission; `None` when
    /// the spec carried none.
    pub(crate) deadline_at: Option<Instant>,
    /// Expected per-task runtime hint in ns (0 = no hint).
    pub(crate) cost_hint: u64,
    /// Admitted, unsettled tasks. Striped: settling a task touches only
    /// a local line. Joiners poll the sum on a bounded wait (see
    /// `Runtime::wait_job`); capped jobs additionally keep `reserved`
    /// exact for the cap check and its eager 1→0 wakeup.
    pub(crate) in_flight: JobGauge,
    /// Exact reservation counter, maintained only when `max_in_flight`
    /// is set: a cap is inherently one shared number, so capped jobs pay
    /// the RMW that uncapped jobs no longer do.
    pub(crate) reserved: AtomicU64,
    /// High-water mark of in-flight tasks: exact for capped jobs
    /// (maintained at reservation), sampled lazily at `stats()` reads
    /// for uncapped ones.
    pub(crate) in_flight_hwm: AtomicU64,
    pub(crate) spawned: JobCounter,
    pub(crate) completed: JobCounter,
    pub(crate) failed: AtomicU64,
    /// Tasks dispatched to a worker at least once (first attempt only).
    pub(crate) dispatched: JobCounter,
    /// Admissions refused by load shedding.
    pub(crate) shed: AtomicU64,
    /// Sum / max of admission→first-dispatch delays, in ns.
    pub(crate) queue_delay_ns_sum: JobCounter,
    pub(crate) queue_delay_ns_max: AtomicU64,
    /// Set by the deadline reaper (or metrics path) once `deadline_at`
    /// passed before the job finished.
    pub(crate) deadline_missed: AtomicBool,
    pub(crate) cancelled: AtomicBool,
    pub(crate) wait: Mutex<()>,
    pub(crate) wait_cv: Condvar,
    /// Failures settled since the last `take_report`.
    pub(crate) failures: Mutex<Vec<TaskFailure>>,
    /// Monotonic fast-path flag for this job's poison state.
    pub(crate) has_poison: AtomicBool,
    pub(crate) poisoned: Mutex<Vec<PoisonedRegion>>,
    /// Submission time, for the telemetry plane's job end-to-end
    /// histogram.
    pub(crate) created_at: Instant,
    /// First-quiescence latch: the e2e sample is recorded once, when
    /// the job's in-flight count first returns to zero.
    pub(crate) e2e_recorded: AtomicBool,
    /// Per-tenant histograms, allocated only when the runtime's
    /// telemetry plane is on.
    pub(crate) telemetry: Option<Arc<crate::telemetry::JobTelemetry>>,
}

impl JobState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: JobId,
        label: String,
        qos: QosClass,
        retry: RetryPolicy,
        fault_plan: Option<Arc<FaultPlan>>,
        session: Arc<TraceSession>,
        max_in_flight: Option<usize>,
        deadline_at: Option<Instant>,
        cost_hint: u64,
        telemetry: Option<Arc<crate::telemetry::JobTelemetry>>,
    ) -> Self {
        JobState {
            id,
            label,
            qos,
            retry,
            fault_plan,
            session,
            max_in_flight,
            deadline_at,
            cost_hint,
            in_flight: JobGauge::default(),
            reserved: AtomicU64::new(0),
            in_flight_hwm: AtomicU64::new(0),
            spawned: JobCounter::default(),
            completed: JobCounter::default(),
            failed: AtomicU64::new(0),
            dispatched: JobCounter::default(),
            shed: AtomicU64::new(0),
            queue_delay_ns_sum: JobCounter::default(),
            queue_delay_ns_max: AtomicU64::new(0),
            deadline_missed: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            wait: Mutex::new(()),
            wait_cv: Condvar::new(),
            failures: Mutex::new(Vec::new()),
            has_poison: AtomicBool::new(false),
            poisoned: Mutex::new(Vec::new()),
            created_at: Instant::now(),
            e2e_recorded: AtomicBool::new(false),
            telemetry,
        }
    }

    /// The implicit root fault domain behind `Runtime::task`. It has no
    /// handle, so its per-job counters are unobservable and the spawn
    /// path skips them (failure and poison bookkeeping still applies).
    pub(crate) fn is_default(&self) -> bool {
        self.id.index == 0
    }

    /// Mark the job cancelled. Returns true on the first call only.
    pub(crate) fn cancel(&self) -> bool {
        !self.cancelled.swap(true, Ordering::SeqCst)
    }

    /// Current admitted-but-unsettled count (striped sum; see
    /// [`crate::stats::StripedGauge`] for the no-false-zero guarantee
    /// joiners rely on).
    pub(crate) fn in_flight(&self) -> u64 {
        self.in_flight.read()
    }

    /// Release one in-flight slot (task settled, or an admission
    /// reservation rolled back). Uncapped jobs touch only a local
    /// stripe — joiners poll on a bounded wait; capped jobs also release
    /// the exact reservation counter, whose 1→0 edge still gives their
    /// joiners an eager wakeup.
    pub(crate) fn release_in_flight(&self) {
        self.release_in_flight_many(1);
    }

    /// [`JobState::release_in_flight`] for `n` slots at once (a refused
    /// batch reservation rolling back).
    pub(crate) fn release_in_flight_many(&self, n: u64) {
        self.in_flight.dec(n);
        if self.max_in_flight.is_some() && self.reserved.fetch_sub(n, Ordering::SeqCst) == n {
            let _g = self.wait.lock();
            self.wait_cv.notify_all();
        }
    }

    /// Drain this job's failure list into a report carrying a snapshot
    /// of every region range still poisoned in its domain.
    pub(crate) fn take_report(&self) -> Result<(), FaultReport> {
        let failures: Vec<TaskFailure> = std::mem::take(&mut *self.failures.lock());
        if failures.is_empty() {
            Ok(())
        } else {
            let poisoned_regions: Vec<Region> =
                self.poisoned.lock().iter().map(|p| p.region).collect();
            Err(FaultReport {
                failures,
                poisoned_regions,
            })
        }
    }

    pub(crate) fn stats(&self) -> JobStats {
        let in_flight = self.in_flight.read();
        // Uncapped jobs have no reservation path maintaining the mark;
        // sample it here so it at least tracks observed peaks.
        if self.max_in_flight.is_none() {
            self.in_flight_hwm.fetch_max(in_flight, Ordering::Relaxed);
        }
        JobStats {
            spawned: self.spawned.sum(),
            completed: self.completed.sum(),
            failed: self.failed.load(Ordering::Relaxed),
            in_flight,
            in_flight_hwm: self.in_flight_hwm.load(Ordering::Relaxed),
        }
    }

    /// Record one admission→first-dispatch delay sample.
    pub(crate) fn record_queue_delay(&self, ns: u64) {
        self.dispatched.add(1);
        self.queue_delay_ns_sum.add(ns);
        self.queue_delay_ns_max.fetch_max(ns, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.record_queue_delay(ns);
        }
    }

    pub(crate) fn metrics(&self) -> JobMetrics {
        let spawned = self.spawned.sum();
        let completed = self.completed.sum();
        let dispatched = self.dispatched.sum();
        let avg = self
            .queue_delay_ns_sum
            .sum()
            .checked_div(dispatched)
            .unwrap_or(0);
        // Quantiles come from the telemetry plane's per-job histograms;
        // without the plane they read zero (avg/max stay authoritative).
        let (qd, body) = match &self.telemetry {
            Some(t) => t.snapshots(),
            None => Default::default(),
        };
        JobMetrics {
            // Every settle passes through a worker running the task
            // wrapper (cancel-skips included), so dispatched sits
            // between completed and spawned and the differences are the
            // queue and run depths.
            queued: spawned.saturating_sub(dispatched),
            running: dispatched.saturating_sub(completed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            spawned,
            queue_delay_avg: Duration::from_nanos(avg),
            queue_delay_max: Duration::from_nanos(self.queue_delay_ns_max.load(Ordering::Relaxed)),
            queue_delay_p50: Duration::from_nanos(qd.p50()),
            queue_delay_p99: Duration::from_nanos(qd.p99()),
            body_p50: Duration::from_nanos(body.p50()),
            body_p99: Duration::from_nanos(body.p99()),
            deadline_missed: self.deadline_missed.load(Ordering::Relaxed)
                || self
                    .deadline_at
                    .is_some_and(|d| Instant::now() > d && completed < spawned),
        }
    }
}

/// The runtime's job table: index 0 is the default job (never removed),
/// later indices are reused through a free list with a per-index
/// generation counter — the same staleness scheme as the task slab.
pub(crate) struct JobTable {
    entries: Vec<JobEntry>,
    free: Vec<u32>,
}

struct JobEntry {
    gen: u32,
    job: Option<Arc<JobState>>,
}

impl JobTable {
    pub(crate) fn new(default_job: Arc<JobState>) -> Self {
        JobTable {
            entries: vec![JobEntry {
                gen: 0,
                job: Some(default_job),
            }],
            free: Vec::new(),
        }
    }

    /// Live jobs beyond the default one.
    pub(crate) fn submitted_count(&self) -> usize {
        self.entries[1..].iter().filter(|e| e.job.is_some()).count()
    }

    /// Allocate a slot and install the job built for its id.
    pub(crate) fn insert(&mut self, make: impl FnOnce(JobId) -> Arc<JobState>) -> Arc<JobState> {
        let index = self.free.pop().unwrap_or_else(|| {
            self.entries.push(JobEntry { gen: 0, job: None });
            (self.entries.len() - 1) as u32
        });
        let entry = &mut self.entries[index as usize];
        debug_assert!(entry.job.is_none(), "insert must take a free slot");
        let job = make(JobId {
            index,
            gen: entry.gen,
        });
        entry.job = Some(Arc::clone(&job));
        job
    }

    /// Retire a job's slot (generation bump makes stale ids observable).
    /// The default job (index 0) is never removed.
    pub(crate) fn remove(&mut self, id: JobId) {
        if id.index == 0 {
            return;
        }
        let entry = &mut self.entries[id.index as usize];
        if entry.gen == id.gen && entry.job.is_some() {
            entry.job = None;
            entry.gen += 1;
            self.free.push(id.index);
        }
    }

    /// Snapshot of every live job, default included.
    pub(crate) fn live(&self) -> Vec<Arc<JobState>> {
        self.entries.iter().filter_map(|e| e.job.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{RegionId, RegionRange};

    fn state(id: JobId) -> Arc<JobState> {
        Arc::new(JobState::new(
            id,
            "t".into(),
            QosClass::Guaranteed,
            RetryPolicy::default(),
            None,
            Arc::new(TraceSession::new(None, None)),
            None,
            None,
            0,
            None,
        ))
    }

    #[test]
    fn job_id_key_and_debug() {
        let id = JobId { index: 3, gen: 2 };
        assert_eq!(id.key(), (3u64 << 32) | 2);
        assert_eq!(format!("{id:?}"), "j3.2");
        assert_eq!(JobId::DEFAULT.key(), 0);
    }

    #[test]
    fn table_reuses_slots_with_generation_bump() {
        let mut t = JobTable::new(state(JobId::DEFAULT));
        let a = t.insert(state);
        assert_eq!(a.id, JobId { index: 1, gen: 0 });
        assert_eq!(t.submitted_count(), 1);
        t.remove(a.id);
        assert_eq!(t.submitted_count(), 0);
        let b = t.insert(state);
        assert_eq!(b.id, JobId { index: 1, gen: 1 }, "slot reused, gen bumped");
        assert_ne!(a.id.key(), b.id.key());
        // Stale removal is a no-op.
        t.remove(a.id);
        assert_eq!(t.submitted_count(), 1);
        // The default job can never be removed.
        t.remove(JobId::DEFAULT);
        assert_eq!(t.live().len(), 2);
    }

    #[test]
    fn cancel_fires_once() {
        let j = state(JobId::DEFAULT);
        assert!(j.cancel());
        assert!(!j.cancel(), "second cancel reports already-cancelled");
        assert!(j.cancelled.load(Ordering::SeqCst));
    }

    #[test]
    fn cleanse_splits_partial_overlaps() {
        let region = |s, e| Region::new(RegionId(7), RegionRange::new(s, e));
        let mut poisoned = vec![PoisonedRegion {
            region: region(10, 30),
            source: TaskId(1),
            source_label: "w".into(),
        }];
        cleanse(&mut poisoned, &region(15, 20));
        let mut got: Vec<(u64, u64)> = poisoned
            .iter()
            .map(|p| (p.region.range.start, p.region.range.end))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(10, 15), (20, 30)]);
        cleanse(&mut poisoned, &region(0, 64));
        assert!(poisoned.is_empty());
    }

    #[test]
    fn spec_builders_compose() {
        let spec = JobSpec::new("tenant")
            .qos(QosClass::BestEffort)
            .retry(RetryPolicy::retries(2))
            .fault_plan(FaultPlan::new(9).panic_rate(0.5))
            .max_in_flight(8)
            .deadline(Duration::from_millis(5))
            .cost_hint(1_000);
        assert_eq!(spec.label, "tenant");
        assert_eq!(spec.qos, QosClass::BestEffort);
        assert_eq!(spec.retry.unwrap().max_attempts, 3);
        assert!(spec.fault_plan.is_some());
        assert_eq!(spec.max_in_flight, Some(8));
        assert_eq!(spec.deadline, Some(Duration::from_millis(5)));
        assert_eq!(spec.cost_hint, Some(1_000));
        let dbg = format!("{spec:?}");
        assert!(dbg.contains("tenant") && dbg.contains("BestEffort"));
    }
}
