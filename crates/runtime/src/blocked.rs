//! Blocked data: the OmpSs idiom of declaring dependencies on row/tile
//! blocks of a larger array, packaged as an API.
//!
//! ```
//! use raa_runtime::{Blocks, Runtime, RuntimeConfig};
//!
//! let rt = Runtime::new(RuntimeConfig::with_workers(2));
//! let data = Blocks::register(&rt, "v", vec![0u64; 100], 4);
//!
//! // One task per block: all four run in parallel (disjoint regions).
//! for b in 0..data.blocks() {
//!     let d = data.clone();
//!     rt.task(format!("init[{b}]"))
//!         .region(d.region(b), raa_runtime::AccessMode::Write)
//!         .body(move || {
//!             for v in d.block_mut(b).iter_mut() {
//!                 *v = b as u64;
//!             }
//!         })
//!         .spawn();
//! }
//! rt.taskwait();
//! assert_eq!(data.handle().read()[99], 3);
//! ```

use std::ops::Range;

use parking_lot::{
    MappedRwLockReadGuard, MappedRwLockWriteGuard, RwLockReadGuard, RwLockWriteGuard,
};

use crate::region::{DataHandle, Region};
use crate::runtime::Runtime;

/// A `Vec<T>` partitioned into near-equal contiguous blocks, each with
/// its own dependence region.
pub struct Blocks<T> {
    handle: DataHandle<Vec<T>>,
    ranges: Vec<Range<usize>>,
}

impl<T> Clone for Blocks<T> {
    fn clone(&self) -> Self {
        Blocks {
            handle: self.handle.clone(),
            ranges: self.ranges.clone(),
        }
    }
}

impl<T> Blocks<T> {
    /// Register `data` with the runtime, split into `blocks` blocks.
    pub fn register(rt: &Runtime, name: impl Into<String>, data: Vec<T>, blocks: usize) -> Self {
        assert!(blocks >= 1 && blocks <= data.len().max(1));
        let n = data.len();
        let handle = rt.register(name, data);
        let base = n / blocks;
        let extra = n % blocks;
        let mut ranges = Vec::with_capacity(blocks);
        let mut start = 0;
        for b in 0..blocks {
            let len = base + usize::from(b < extra);
            ranges.push(start..start + len);
            start += len;
        }
        Blocks { handle, ranges }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.ranges.len()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.ranges.last().map(|r| r.end).unwrap_or(0)
    }

    /// True when the underlying vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element range of block `b`.
    pub fn range(&self, b: usize) -> Range<usize> {
        self.ranges[b].clone()
    }

    /// The dependence region of block `b` (for `TaskBuilder::region`).
    pub fn region(&self, b: usize) -> Region {
        let r = &self.ranges[b];
        self.handle.sub(r.start as u64, r.end as u64)
    }

    /// The region covering the whole vector.
    pub fn whole(&self) -> Region {
        self.handle.region()
    }

    /// The block containing element `i`.
    pub fn block_of(&self, i: usize) -> usize {
        self.ranges
            .partition_point(|r| r.end <= i)
            .min(self.ranges.len() - 1)
    }

    /// Underlying handle (whole-vector reads/writes).
    pub fn handle(&self) -> &DataHandle<Vec<T>> {
        &self.handle
    }

    /// Shared view of block `b`.
    pub fn block(&self, b: usize) -> MappedRwLockReadGuard<'_, [T]> {
        let r = self.ranges[b].clone();
        RwLockReadGuard::map(self.handle.read(), |v| &v[r])
    }

    /// Exclusive view of block `b`. Tasks on disjoint blocks may hold
    /// these concurrently in spirit; the embedded lock still serialises
    /// physical access (uncontended when dependencies are declared
    /// correctly, same policy as [`DataHandle`]).
    pub fn block_mut(&self, b: usize) -> MappedRwLockWriteGuard<'_, [T]> {
        let r = self.ranges[b].clone();
        RwLockWriteGuard::map(self.handle.write(), |v| &mut v[r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::AccessMode;
    use crate::runtime::RuntimeConfig;

    fn rt() -> Runtime {
        Runtime::new(RuntimeConfig::with_workers(2))
    }

    #[test]
    fn ranges_partition_exactly() {
        let rt = rt();
        let b = Blocks::register(&rt, "v", vec![0u8; 10], 3);
        assert_eq!(b.blocks(), 3);
        assert_eq!(b.len(), 10);
        assert_eq!(b.range(0), 0..4);
        assert_eq!(b.range(1), 4..7);
        assert_eq!(b.range(2), 7..10);
        assert_eq!(b.block_of(0), 0);
        assert_eq!(b.block_of(4), 1);
        assert_eq!(b.block_of(9), 2);
    }

    #[test]
    fn regions_are_disjoint_and_cover() {
        let rt = rt();
        let b = Blocks::register(&rt, "v", vec![0u32; 64], 4);
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(!b.region(i).overlaps(&b.region(j)), "{i} vs {j}");
            }
            assert!(b.region(i).overlaps(&b.whole()));
        }
    }

    #[test]
    fn block_views_read_and_write() {
        let rt = rt();
        let b = Blocks::register(&rt, "v", (0u64..20).collect(), 5);
        assert_eq!(&*b.block(1), &[4, 5, 6, 7]);
        b.block_mut(1)[0] = 99;
        assert_eq!(b.handle().read()[4], 99);
    }

    #[test]
    fn parallel_block_tasks_chain_correctly() {
        let rt = rt();
        let data = Blocks::register(&rt, "v", vec![1u64; 40], 4);
        // Stage 1: double each block; stage 2: sum each block into a
        // per-block output; stage 3: reduce.
        for b in 0..4 {
            let d = data.clone();
            rt.task(format!("double[{b}]"))
                .region(data.region(b), AccessMode::ReadWrite)
                .body(move || {
                    for v in d.block_mut(b).iter_mut() {
                        *v *= 2;
                    }
                })
                .spawn();
        }
        let sums = Blocks::register(&rt, "sums", vec![0u64; 4], 4);
        for b in 0..4 {
            let (d, s) = (data.clone(), sums.clone());
            rt.task(format!("sum[{b}]"))
                .region(data.region(b), AccessMode::Read)
                .region(sums.region(b), AccessMode::Write)
                .body(move || {
                    s.block_mut(b)[0] = d.block(b).iter().sum();
                })
                .spawn();
        }
        let total = rt.register("total", 0u64);
        {
            let (s, t) = (sums.clone(), total.clone());
            rt.task("reduce")
                .region(sums.whole(), AccessMode::Read)
                .writes(&total)
                .body(move || {
                    *t.write() = s.handle().read().iter().sum();
                })
                .spawn();
        }
        rt.taskwait();
        assert_eq!(*total.read(), 80);
    }

    #[test]
    #[should_panic]
    fn more_blocks_than_elements_rejected() {
        let rt = rt();
        let _ = Blocks::register(&rt, "v", vec![0u8; 2], 3);
    }
}
