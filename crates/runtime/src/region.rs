//! Data regions and access declarations.
//!
//! A *region* is the unit over which dependencies are declared, mirroring
//! the `in`/`out`/`inout` clauses of OmpSs.  Every [`DataHandle`] owns one
//! region id; blocked structures (e.g. the row blocks of a sparse matrix)
//! declare sub-ranges of the same id so that tasks touching disjoint blocks
//! stay independent.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Globally unique identifier for a registered datum.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u64);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

static NEXT_REGION_ID: AtomicU64 = AtomicU64::new(0);

fn fresh_region_id() -> RegionId {
    RegionId(NEXT_REGION_ID.fetch_add(1, Ordering::Relaxed))
}

/// A half-open element range `[start, end)` within a region.
///
/// Ranges are in *element* units, not bytes; the dependency tracker only
/// needs overlap semantics, not layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RegionRange {
    pub start: u64,
    pub end: u64,
}

impl RegionRange {
    /// The range covering every element of a region.
    pub const ALL: RegionRange = RegionRange {
        start: 0,
        end: u64::MAX,
    };

    /// A new half-open range. Panics if `start > end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "invalid range [{start}, {end})");
        RegionRange { start, end }
    }

    /// Number of elements covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range covers nothing.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `self` and `other` share at least one element.
    /// Empty ranges overlap nothing.
    pub fn overlaps(&self, other: &RegionRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// The intersection of two ranges, if non-empty.
    pub fn intersect(&self, other: &RegionRange) -> Option<RegionRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(RegionRange { start, end })
    }

    /// True when `self` fully contains `other`.
    pub fn contains(&self, other: &RegionRange) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// A region reference: a datum id plus an element range within it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Region {
    pub id: RegionId,
    pub range: RegionRange,
}

impl Region {
    pub fn new(id: RegionId, range: RegionRange) -> Self {
        Region { id, range }
    }

    /// True when the two references can carry a dependency.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.id == other.id && self.range.overlaps(&other.range)
    }
}

/// How a task accesses a region — the OmpSs `in` / `out` / `inout` clauses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AccessMode {
    /// `in`: the task only reads the region (RAW source ordering).
    Read,
    /// `out`: the task overwrites the region entirely.
    Write,
    /// `inout`: the task reads and updates the region.
    ReadWrite,
}

impl AccessMode {
    /// True for `out` and `inout` accesses.
    pub fn writes(&self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// True for `in` and `inout` accesses.
    pub fn reads(&self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }
}

/// One declared access: region + mode. The unit the dependency tracker
/// consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    pub region: Region,
    pub mode: AccessMode,
}

struct HandleInner<T: ?Sized> {
    id: RegionId,
    name: String,
    data: RwLock<T>,
}

/// A registered, shareable datum with a region identity.
///
/// The runtime orders tasks by their *declared* dependencies; the embedded
/// `RwLock` additionally guarantees freedom from data races even if a task
/// under-declares (the lock is virtually always uncontended when
/// dependencies are declared correctly, so the cost is one atomic pair).
pub struct DataHandle<T: ?Sized> {
    inner: Arc<HandleInner<T>>,
}

impl<T> DataHandle<T> {
    /// Register a fresh datum. Usually called through
    /// [`crate::Runtime::register`].
    pub fn new(name: impl Into<String>, value: T) -> Self {
        DataHandle {
            inner: Arc::new(HandleInner {
                id: fresh_region_id(),
                name: name.into(),
                data: RwLock::new(value),
            }),
        }
    }

    /// Consume the handle and return the datum if this is the last clone.
    pub fn try_unwrap(self) -> Result<T, DataHandle<T>> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.data.into_inner()),
            Err(inner) => Err(DataHandle { inner }),
        }
    }
}

impl<T: ?Sized> DataHandle<T> {
    /// The region id of this datum.
    pub fn id(&self) -> RegionId {
        self.inner.id
    }

    /// Human-readable name (used in TDG dumps).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The region covering the entire datum.
    pub fn region(&self) -> Region {
        Region::new(self.inner.id, RegionRange::ALL)
    }

    /// A sub-range region of this datum, for blocked dependencies.
    pub fn sub(&self, start: u64, end: u64) -> Region {
        Region::new(self.inner.id, RegionRange::new(start, end))
    }

    /// Shared access to the datum. Tasks should declare `reads` on an
    /// overlapping region first.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.data.read()
    }

    /// Exclusive access to the datum. Tasks should declare `writes` on an
    /// overlapping region first.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.data.write()
    }
}

impl<T: ?Sized> Clone for DataHandle<T> {
    fn clone(&self) -> Self {
        DataHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: ?Sized> fmt::Debug for DataHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DataHandle")
            .field("id", &self.inner.id)
            .field("name", &self.inner.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_overlap_basics() {
        let a = RegionRange::new(0, 10);
        let b = RegionRange::new(10, 20);
        let c = RegionRange::new(5, 15);
        assert!(!a.overlaps(&b), "touching ranges do not overlap");
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn range_intersection() {
        let a = RegionRange::new(0, 10);
        let c = RegionRange::new(5, 15);
        assert_eq!(a.intersect(&c), Some(RegionRange::new(5, 10)));
        let b = RegionRange::new(10, 20);
        assert_eq!(a.intersect(&b), None);
    }

    #[test]
    fn empty_range_overlaps_nothing() {
        let e = RegionRange::new(5, 5);
        assert!(e.is_empty());
        assert!(!e.overlaps(&RegionRange::new(0, 10)));
        assert!(!RegionRange::new(0, 10).overlaps(&e));
    }

    #[test]
    fn range_contains() {
        let big = RegionRange::new(0, 100);
        assert!(big.contains(&RegionRange::new(0, 100)));
        assert!(big.contains(&RegionRange::new(40, 60)));
        assert!(!RegionRange::new(40, 60).contains(&big));
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn bad_range_panics() {
        let _ = RegionRange::new(3, 2);
    }

    #[test]
    fn regions_on_distinct_data_never_conflict() {
        let a = DataHandle::new("a", 0u32);
        let b = DataHandle::new("b", 0u32);
        assert_ne!(a.id(), b.id());
        assert!(!a.region().overlaps(&b.region()));
        assert!(a.region().overlaps(&a.region()));
    }

    #[test]
    fn sub_regions_of_same_handle() {
        let a = DataHandle::new("a", vec![0u8; 100]);
        let lo = a.sub(0, 50);
        let hi = a.sub(50, 100);
        assert!(!lo.overlaps(&hi));
        assert!(lo.overlaps(&a.region()));
        assert!(hi.overlaps(&a.region()));
    }

    #[test]
    fn handle_read_write_roundtrip() {
        let h = DataHandle::new("v", vec![1, 2, 3]);
        h.write().push(4);
        assert_eq!(*h.read(), vec![1, 2, 3, 4]);
        let h2 = h.clone();
        assert_eq!(h.id(), h2.id());
    }

    #[test]
    fn try_unwrap_returns_value_when_unique() {
        let h = DataHandle::new("v", 7u8);
        let h2 = h.clone();
        let h = h.try_unwrap().expect_err("two clones alive");
        drop(h2);
        assert_eq!(h.try_unwrap().unwrap(), 7);
    }

    #[test]
    fn access_mode_predicates() {
        assert!(AccessMode::Read.reads() && !AccessMode::Read.writes());
        assert!(!AccessMode::Write.reads() && AccessMode::Write.writes());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
    }
}
