//! Online dependency tracking.
//!
//! For every registered datum the tracker maintains a sorted list of
//! disjoint segments, each carrying the id of its *last writer* and the
//! *readers since that write*.  A new access splits segments at its range
//! boundaries and collects edges exactly as a register scoreboard would:
//!
//! * a **read** depends on the last writer of every overlapped segment
//!   (RAW);
//! * a **write** depends on the last writer (WAW) *and* on every reader
//!   since that write (WAR), then becomes the segment's last writer.
//!
//! This mirrors how OmpSs/Nanos builds the Task Dependency Graph from
//! `in`/`out`/`inout` clauses at submission time.
//!
//! Two trackers share the segment machinery:
//!
//! * [`DepTracker`] — the original single-threaded tracker, keyed by
//!   [`TaskId`] (used by analysis tools, benches and property tests);
//! * [`ShardedDepTracker`] — the runtime's concurrent tracker: the
//!   datum map is sharded by region-id hash, so spawns and completions
//!   touching disjoint data never contend on a lock. Owners are
//!   [`TaskRef`]s (slot + generation), letting the runtime detect stale
//!   entries for already-completed predecessors without ever cleaning
//!   the tracker from the completion path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::region::{Access, RegionId, RegionRange};
use crate::task::{TaskId, TaskRef};

/// One dependency-tracking segment: a half-open range plus its access
/// history summary. `O` identifies the owning task (`TaskId` or
/// `TaskRef`).
#[derive(Clone, Debug)]
struct Segment<O> {
    range: RegionRange,
    last_writer: Option<O>,
    readers: Vec<O>,
}

impl<O> Segment<O> {
    fn fresh(range: RegionRange) -> Self {
        Segment {
            range,
            last_writer: None,
            readers: Vec::new(),
        }
    }
}

/// Per-datum segment list. Invariants: segments are sorted by `start`,
/// disjoint, and jointly cover `[0, u64::MAX)`.
#[derive(Clone, Debug)]
struct RegionState<O> {
    segments: Vec<Segment<O>>,
}

impl<O: Copy + PartialEq> RegionState<O> {
    fn new() -> Self {
        RegionState {
            segments: vec![Segment::fresh(RegionRange::ALL)],
        }
    }

    /// Scoreboard update for one access: collect RAW/WAR/WAW edges into
    /// `preds` and record `owner` as writer or reader.
    fn apply(&mut self, owner: O, access: &Access, preds: &mut Vec<O>) {
        self.split_at(access.region.range.start);
        self.split_at(access.region.range.end);
        let idxs = self.overlapping(access.region.range);
        for seg in &mut self.segments[idxs] {
            debug_assert!(access.region.range.contains(&seg.range));
            if access.mode.writes() {
                if let Some(w) = seg.last_writer {
                    preds.push(w);
                }
                preds.extend_from_slice(&seg.readers);
                seg.last_writer = Some(owner);
                seg.readers.clear();
            } else {
                if let Some(w) = seg.last_writer {
                    preds.push(w);
                }
                if !seg.readers.contains(&owner) {
                    seg.readers.push(owner);
                }
            }
        }
        self.coalesce();
    }

    /// Split segments so that `at` is a segment boundary.
    fn split_at(&mut self, at: u64) {
        if at == 0 || at == u64::MAX {
            return;
        }
        // First segment whose end lies beyond `at`; since the segments
        // jointly cover [0, u64::MAX), it exists and contains `at` unless
        // `at` is already one of its boundaries.
        let idx = self.segments.partition_point(|s| s.range.end <= at);
        let seg = &self.segments[idx];
        if seg.range.start >= at {
            return;
        }
        let mut right = seg.clone();
        right.range = RegionRange::new(at, seg.range.end);
        self.segments[idx].range = RegionRange::new(seg.range.start, at);
        self.segments.insert(idx + 1, right);
    }

    /// Indices of segments overlapping `range` (after splitting, these are
    /// exactly the segments fully contained in `range`).
    fn overlapping(&self, range: RegionRange) -> std::ops::Range<usize> {
        let lo = self
            .segments
            .partition_point(|s| s.range.end <= range.start);
        let hi = self.segments.partition_point(|s| s.range.start < range.end);
        lo..hi
    }

    /// Merge adjacent segments with identical state to bound growth.
    fn coalesce(&mut self) {
        let mut out: Vec<Segment<O>> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            match out.last_mut() {
                Some(prev)
                    if prev.range.end == seg.range.start
                        && prev.last_writer == seg.last_writer
                        && prev.readers == seg.readers =>
                {
                    prev.range = RegionRange::new(prev.range.start, seg.range.end);
                }
                _ => out.push(seg),
            }
        }
        self.segments = out;
    }
}

/// The dependency tracker: datum id → segment list.
#[derive(Default)]
pub struct DepTracker {
    regions: HashMap<RegionId, RegionState<TaskId>>,
    /// Total number of edges ever produced (for stats).
    edges_produced: u64,
}

impl DepTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the declared accesses of a newly submitted task and return
    /// its predecessor set (deduplicated, self-edges removed).
    pub fn submit(&mut self, task: TaskId, accesses: &[Access]) -> Vec<TaskId> {
        let mut preds: Vec<TaskId> = Vec::new();
        for access in accesses {
            if access.region.range.is_empty() {
                continue;
            }
            self.regions
                .entry(access.region.id)
                .or_insert_with(RegionState::new)
                .apply(task, access, &mut preds);
        }
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|&p| p != task);
        self.edges_produced += preds.len() as u64;
        preds
    }

    /// Number of dependency edges produced so far.
    pub fn edges_produced(&self) -> u64 {
        self.edges_produced
    }

    /// Number of datums ever touched.
    pub fn tracked_regions(&self) -> usize {
        self.regions.len()
    }

    /// Drop all history (e.g. between benchmark repetitions).
    pub fn reset(&mut self) {
        self.regions.clear();
        self.edges_produced = 0;
    }
}

/// Concurrent dependency tracker, sharded by region-id hash. The hot
/// path of [`crate::Runtime`]: a spawn declaring accesses to disjoint
/// data takes only the shard locks its regions hash to, so unrelated
/// spawns proceed in parallel; completions never touch the tracker at
/// all (stale owner entries are detected via [`TaskRef`] generations).
///
/// Region state is keyed by `(namespace, region)`. The job layer passes
/// each job's generation-counted id as the namespace, so two tenants
/// touching the same region neither serialise on dependency edges nor
/// observe each other's access history; single-job callers pass 0.
pub struct ShardedDepTracker {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    edges: AtomicU64,
}

/// One shard's slice of the `(namespace, region)` table.
type Shard = HashMap<(u64, RegionId), RegionState<TaskRef>>;

impl Default for ShardedDepTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedDepTracker {
    pub fn new() -> Self {
        Self::with_shards(64)
    }

    pub fn with_shards(n: usize) -> Self {
        assert!(n.is_power_of_two());
        ShardedDepTracker {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
            edges: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, ns: u64, id: RegionId) -> usize {
        // Fibonacci hash: region ids are sequential, multiply-shift
        // spreads them across shards. The namespace is folded in with a
        // second odd multiplier so one job's regions do not all collide
        // with another job's on the same shard.
        let mixed = id.0 ^ ns.wrapping_mul(0xA24B_AED4_963E_E407);
        ((mixed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.mask) as usize
    }

    /// Record the declared accesses of `who` (within dependency
    /// namespace `ns`) and append its predecessor set (deduplicated by
    /// task id, self-edges removed) to `preds`.
    ///
    /// Every shard involved is locked *simultaneously*, in ascending
    /// index order. Per-access locking would let two tasks observe each
    /// other in opposite orders on different regions and deadlock the
    /// TDG with an A→B, B→A cycle; ascending acquisition keeps the
    /// simultaneous locking deadlock-free.
    pub fn submit(&self, ns: u64, who: TaskRef, accesses: &[Access], preds: &mut Vec<TaskRef>) {
        preds.clear();
        let live = |a: &&Access| !a.region.range.is_empty();
        let mut shard_ids: Vec<usize> = accesses
            .iter()
            .filter(live)
            .map(|a| self.shard_of(ns, a.region.id))
            .collect();
        if shard_ids.is_empty() {
            return;
        }
        shard_ids.sort_unstable();
        shard_ids.dedup();
        let mut guards: Vec<_> = shard_ids.iter().map(|&s| self.shards[s].lock()).collect();
        for access in accesses.iter().filter(live) {
            let pos = shard_ids
                .binary_search(&self.shard_of(ns, access.region.id))
                .expect("shard was collected above");
            guards[pos]
                .entry((ns, access.region.id))
                .or_insert_with(RegionState::new)
                .apply(who, access, preds);
        }
        drop(guards);
        preds.sort_unstable_by_key(|r| r.tid);
        preds.dedup_by_key(|r| r.tid);
        preds.retain(|r| r.tid != who.tid);
        self.edges.fetch_add(preds.len() as u64, Ordering::Relaxed);
    }

    /// Number of dependency edges produced so far.
    pub fn edges_produced(&self) -> u64 {
        self.edges.load(Ordering::Relaxed)
    }

    /// Record the declared accesses of an ordered *batch* of tasks in one
    /// locked sweep. The union of every involved shard is locked once
    /// (ascending index order, same deadlock argument as
    /// [`ShardedDepTracker::submit`]) and the tasks are applied in batch
    /// order under that single critical section — so intra-batch edges
    /// (task *i* depending on an earlier task *j* of the same batch) fall
    /// out of the scoreboard exactly as if the tasks had been submitted
    /// one at a time, at one lock round-trip per *batch* instead of per
    /// task. `preds_out[i]` receives task *i*'s predecessor set, post-
    /// processed like `submit`'s (sorted, deduplicated, self-edges
    /// removed).
    pub fn submit_batch(
        &self,
        ns: u64,
        tasks: &[(TaskRef, &[Access])],
        preds_out: &mut Vec<Vec<TaskRef>>,
    ) {
        preds_out.clear();
        let live = |a: &&Access| !a.region.range.is_empty();
        let mut shard_ids: Vec<usize> = tasks
            .iter()
            .flat_map(|(_, accesses)| accesses.iter().filter(live))
            .map(|a| self.shard_of(ns, a.region.id))
            .collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        let mut guards: Vec<_> = shard_ids.iter().map(|&s| self.shards[s].lock()).collect();
        let mut total_edges = 0u64;
        for &(who, accesses) in tasks {
            let mut preds: Vec<TaskRef> = Vec::new();
            for access in accesses.iter().filter(live) {
                let pos = shard_ids
                    .binary_search(&self.shard_of(ns, access.region.id))
                    .expect("shard was collected above");
                guards[pos]
                    .entry((ns, access.region.id))
                    .or_insert_with(RegionState::new)
                    .apply(who, access, &mut preds);
            }
            preds.sort_unstable_by_key(|r| r.tid);
            preds.dedup_by_key(|r| r.tid);
            preds.retain(|r| r.tid != who.tid);
            total_edges += preds.len() as u64;
            preds_out.push(preds);
        }
        drop(guards);
        self.edges.fetch_add(total_edges, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Access, AccessMode, Region, RegionId};

    fn acc(id: u64, start: u64, end: u64, mode: AccessMode) -> Access {
        Access {
            region: Region::new(RegionId(id), RegionRange::new(start, end)),
            mode,
        }
    }

    #[test]
    fn raw_dependency() {
        let mut t = DepTracker::new();
        let p = t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Write)]);
        assert!(p.is_empty());
        let p = t.submit(TaskId(1), &[acc(0, 0, 10, AccessMode::Read)]);
        assert_eq!(p, vec![TaskId(0)]);
    }

    #[test]
    fn war_dependency() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Read)]);
        t.submit(TaskId(1), &[acc(0, 0, 10, AccessMode::Read)]);
        let p = t.submit(TaskId(2), &[acc(0, 0, 10, AccessMode::Write)]);
        assert_eq!(p, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn waw_dependency() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Write)]);
        let p = t.submit(TaskId(1), &[acc(0, 0, 10, AccessMode::Write)]);
        assert_eq!(p, vec![TaskId(0)]);
    }

    #[test]
    fn readers_cleared_after_write() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Read)]);
        t.submit(TaskId(1), &[acc(0, 0, 10, AccessMode::Write)]);
        // The next writer must depend only on t1 (WAW), not on the stale
        // reader t0.
        let p = t.submit(TaskId(2), &[acc(0, 0, 10, AccessMode::Write)]);
        assert_eq!(p, vec![TaskId(1)]);
    }

    #[test]
    fn disjoint_ranges_are_independent() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Write)]);
        let p = t.submit(TaskId(1), &[acc(0, 10, 20, AccessMode::Write)]);
        assert!(p.is_empty(), "disjoint blocks must not conflict: {p:?}");
    }

    #[test]
    fn partial_overlap_splits_segments() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Write)]);
        t.submit(TaskId(1), &[acc(0, 10, 20, AccessMode::Write)]);
        // Range straddling both writers depends on both.
        let p = t.submit(TaskId(2), &[acc(0, 5, 15, AccessMode::Read)]);
        assert_eq!(p, vec![TaskId(0), TaskId(1)]);
        // Writing the straddle creates WAR on t2 and WAW on t0/t1 only in
        // the overlapped parts.
        let p = t.submit(TaskId(3), &[acc(0, 5, 15, AccessMode::Write)]);
        assert_eq!(p, vec![TaskId(0), TaskId(1), TaskId(2)]);
        // A reader of [0,5) still depends on t0, not t3.
        let p = t.submit(TaskId(4), &[acc(0, 0, 5, AccessMode::Read)]);
        assert_eq!(p, vec![TaskId(0)]);
        // A reader of [5,8) now depends on t3.
        let p = t.submit(TaskId(5), &[acc(0, 5, 8, AccessMode::Read)]);
        assert_eq!(p, vec![TaskId(3)]);
    }

    #[test]
    fn different_region_ids_never_conflict() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Write)]);
        let p = t.submit(TaskId(1), &[acc(1, 0, 10, AccessMode::ReadWrite)]);
        assert!(p.is_empty());
        assert_eq!(t.tracked_regions(), 2);
    }

    #[test]
    fn inout_behaves_as_read_and_write() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Write)]);
        let p = t.submit(TaskId(1), &[acc(0, 0, 10, AccessMode::ReadWrite)]);
        assert_eq!(p, vec![TaskId(0)]);
        let p = t.submit(TaskId(2), &[acc(0, 0, 10, AccessMode::ReadWrite)]);
        assert_eq!(p, vec![TaskId(1)], "inout chains serialise");
    }

    #[test]
    fn duplicate_predecessors_are_deduped() {
        let mut t = DepTracker::new();
        t.submit(
            TaskId(0),
            &[
                acc(0, 0, 10, AccessMode::Write),
                acc(1, 0, 10, AccessMode::Write),
            ],
        );
        let p = t.submit(
            TaskId(1),
            &[
                acc(0, 0, 10, AccessMode::Read),
                acc(1, 0, 10, AccessMode::Read),
            ],
        );
        assert_eq!(p, vec![TaskId(0)]);
        assert_eq!(t.edges_produced(), 1);
    }

    #[test]
    fn empty_range_is_ignored() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Write)]);
        let p = t.submit(TaskId(1), &[acc(0, 5, 5, AccessMode::Write)]);
        assert!(p.is_empty());
    }

    #[test]
    fn full_range_access_conflicts_with_blocks() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 16, AccessMode::Write)]);
        t.submit(TaskId(1), &[acc(0, 16, 32, AccessMode::Write)]);
        let whole = Access {
            region: Region::new(RegionId(0), RegionRange::ALL),
            mode: AccessMode::Read,
        };
        let p = t.submit(TaskId(2), &[whole]);
        assert_eq!(p, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn reset_clears_history() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Write)]);
        t.reset();
        let p = t.submit(TaskId(1), &[acc(0, 0, 10, AccessMode::Read)]);
        assert!(p.is_empty());
        assert_eq!(t.edges_produced(), 0);
    }

    #[test]
    fn repeated_reader_not_duplicated_in_segment() {
        let mut t = DepTracker::new();
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Read)]);
        t.submit(TaskId(0), &[acc(0, 0, 10, AccessMode::Read)]);
        let p = t.submit(TaskId(1), &[acc(0, 0, 10, AccessMode::Write)]);
        assert_eq!(p, vec![TaskId(0)]);
    }

    fn tref(tid: u32) -> TaskRef {
        TaskRef {
            tid: TaskId(tid),
            slot: tid,
            gen: 1,
        }
    }

    #[test]
    fn sharded_tracker_agrees_with_single_threaded() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let mut single = DepTracker::new();
        let sharded = ShardedDepTracker::with_shards(8);
        let mut out = Vec::new();
        for tid in 0..200u32 {
            let mut accesses = Vec::new();
            for _ in 0..rng.gen_range(1..=3) {
                let id = rng.gen_range(0..6u64);
                let start = rng.gen_range(0..32u64);
                let end = rng.gen_range(start..=32u64);
                let mode = match rng.gen_range(0..3) {
                    0 => AccessMode::Read,
                    1 => AccessMode::Write,
                    _ => AccessMode::ReadWrite,
                };
                accesses.push(acc(id, start, end, mode));
            }
            let want = single.submit(TaskId(tid), &accesses);
            sharded.submit(0, tref(tid), &accesses, &mut out);
            let got: Vec<TaskId> = out.iter().map(|r| r.tid).collect();
            assert_eq!(got, want, "tid={tid}");
        }
        assert_eq!(sharded.edges_produced(), single.edges_produced());
    }

    #[test]
    fn submit_batch_agrees_with_sequential_submits() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xF00D);
        let sequential = ShardedDepTracker::with_shards(8);
        let batched = ShardedDepTracker::with_shards(8);
        let mut tid = 0u32;
        let mut out = Vec::new();
        for _ in 0..20 {
            // Random batch of 1..=12 tasks, each with 0..=3 accesses.
            let batch: Vec<(TaskRef, Vec<Access>)> = (0..rng.gen_range(1..=12))
                .map(|_| {
                    let accesses: Vec<Access> = (0..rng.gen_range(0..=3))
                        .map(|_| {
                            let id = rng.gen_range(0..5u64);
                            let start = rng.gen_range(0..24u64);
                            let end = rng.gen_range(start..=24u64);
                            let mode = match rng.gen_range(0..3) {
                                0 => AccessMode::Read,
                                1 => AccessMode::Write,
                                _ => AccessMode::ReadWrite,
                            };
                            acc(id, start, end, mode)
                        })
                        .collect();
                    tid += 1;
                    (tref(tid), accesses)
                })
                .collect();
            let want: Vec<Vec<TaskRef>> = batch
                .iter()
                .map(|(who, accesses)| {
                    sequential.submit(0, *who, accesses, &mut out);
                    out.clone()
                })
                .collect();
            let entries: Vec<(TaskRef, &[Access])> = batch
                .iter()
                .map(|(who, accesses)| (*who, accesses.as_slice()))
                .collect();
            let mut got = Vec::new();
            batched.submit_batch(0, &entries, &mut got);
            let got_ids: Vec<Vec<TaskId>> = got
                .iter()
                .map(|p| p.iter().map(|r| r.tid).collect())
                .collect();
            let want_ids: Vec<Vec<TaskId>> = want
                .iter()
                .map(|p| p.iter().map(|r| r.tid).collect())
                .collect();
            assert_eq!(got_ids, want_ids);
        }
        assert_eq!(batched.edges_produced(), sequential.edges_produced());
    }

    #[test]
    fn submit_batch_wires_intra_batch_chain() {
        let t = ShardedDepTracker::new();
        // w(0) -> r(1), r(2) -> w(3): all four in one batch.
        let a_w = [acc(0, 0, 8, AccessMode::Write)];
        let a_r = [acc(0, 0, 8, AccessMode::Read)];
        let entries: Vec<(TaskRef, &[Access])> = vec![
            (tref(0), &a_w),
            (tref(1), &a_r),
            (tref(2), &a_r),
            (tref(3), &a_w),
        ];
        let mut preds = Vec::new();
        t.submit_batch(7, &entries, &mut preds);
        let ids: Vec<Vec<u32>> = preds
            .iter()
            .map(|p| p.iter().map(|r| r.tid.0).collect())
            .collect();
        assert_eq!(ids, vec![vec![], vec![0], vec![0], vec![0, 1, 2]]);
        assert_eq!(t.edges_produced(), 5);
    }

    #[test]
    fn sharded_tracker_disjoint_regions_from_threads() {
        use std::sync::Arc;
        let t = Arc::new(ShardedDepTracker::new());
        let handles: Vec<_> = (0..4u64)
            .map(|lane| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut preds = Vec::new();
                    for i in 0..500u32 {
                        let tid = lane as u32 * 1000 + i;
                        t.submit(
                            0,
                            tref(tid),
                            &[acc(lane, 0, 64, AccessMode::ReadWrite)],
                            &mut preds,
                        );
                        // Every task in a lane chains on the previous one.
                        if i == 0 {
                            assert!(preds.is_empty());
                        } else {
                            assert_eq!(preds.len(), 1);
                            assert_eq!(preds[0].tid, TaskId(tid - 1));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.edges_produced(), 4 * 499);
    }

    #[test]
    fn sharded_tracker_namespaces_are_isolated() {
        let t = ShardedDepTracker::with_shards(8);
        let mut preds = Vec::new();
        // Namespace 1 writes region 0; namespace 2's writer to the same
        // region must see no predecessor — jobs do not serialise on
        // shared region ids.
        t.submit(1, tref(0), &[acc(0, 0, 64, AccessMode::Write)], &mut preds);
        assert!(preds.is_empty());
        t.submit(2, tref(1), &[acc(0, 0, 64, AccessMode::Write)], &mut preds);
        assert!(preds.is_empty(), "cross-namespace WAW must not appear");
        // Within a namespace the ordering is intact.
        t.submit(1, tref(2), &[acc(0, 0, 64, AccessMode::Read)], &mut preds);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].tid, TaskId(0));
        assert_eq!(t.edges_produced(), 1);
    }

    /// Oracle cross-check: a naive per-element tracker must agree with the
    /// segment implementation on random access sequences.
    #[test]
    fn matches_naive_oracle_on_random_sequences() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for _ in 0..50 {
            let mut fast = DepTracker::new();
            // element -> (last_writer, readers)
            let mut slow: Vec<(Option<TaskId>, Vec<TaskId>)> = vec![(None, Vec::new()); 64];
            for tid in 0..40u32 {
                let start = rng.gen_range(0..64u64);
                let end = rng.gen_range(start..=64u64);
                let mode = match rng.gen_range(0..3) {
                    0 => AccessMode::Read,
                    1 => AccessMode::Write,
                    _ => AccessMode::ReadWrite,
                };
                let got = fast.submit(TaskId(tid), &[acc(7, start, end, mode)]);
                let mut want: Vec<TaskId> = Vec::new();
                for e in start..end {
                    let cell = &mut slow[e as usize];
                    if mode.writes() {
                        if let Some(w) = cell.0 {
                            want.push(w);
                        }
                        want.extend_from_slice(&cell.1);
                        cell.0 = Some(TaskId(tid));
                        cell.1.clear();
                    } else {
                        if let Some(w) = cell.0 {
                            want.push(w);
                        }
                        cell.1.push(TaskId(tid));
                    }
                }
                want.sort_unstable();
                want.dedup();
                want.retain(|&p| p != TaskId(tid));
                assert_eq!(got, want, "tid={tid} [{start},{end}) {mode:?}");
            }
        }
    }
}
