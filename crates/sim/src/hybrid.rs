//! The hybrid hierarchy's SPM directory and alias filter (§2 of the
//! paper; Alvarez et al., ISCA'15).
//!
//! The compiler maps strided arrays to the scratchpads, but random
//! references with *unknown aliasing hazards* might touch the same data.
//! The hardware therefore keeps:
//!
//! * a **filter** of the address ranges the compiler declared
//!   SPM-mappable — a cheap first-level check consulted by every
//!   unknown-alias access, and
//! * an **SPM directory (SDIR)** tracking which tiles are *currently*
//!   resident in which scratchpad, so the access is served by the memory
//!   that holds the valid copy.

use std::collections::HashMap;

/// Filter + SDIR. Residency is tracked in `tile_bytes`-aligned units
/// (64-byte lines for the packed-DMA software cache), matching the
/// per-core [`crate::spm::SpmState`] granularity.
#[derive(Clone, Debug, Default)]
pub struct SpmDirectory {
    /// Sorted, disjoint `(base, end)` ranges the compiler mapped to SPMs.
    mapped: Vec<(u64, u64)>,
    tile_bytes: u64,
    /// tile base → owning core.
    resident: HashMap<u64, u16>,
    pub filter_lookups: u64,
    pub sdir_hits: u64,
    pub sdir_misses: u64,
}

impl SpmDirectory {
    /// Program the filter with the compiler's SPM-mapped ranges.
    pub fn new(mut ranges: Vec<(u64, u64)>, tile_bytes: u64) -> Self {
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "SPM ranges must be disjoint");
        }
        SpmDirectory {
            mapped: ranges,
            tile_bytes,
            resident: HashMap::new(),
            filter_lookups: 0,
            sdir_hits: 0,
            sdir_misses: 0,
        }
    }

    fn tile_of(&self, addr: u64) -> u64 {
        addr / self.tile_bytes * self.tile_bytes
    }

    /// Filter check: could `addr` be SPM-mapped at all? (Pure range
    /// membership; counts a lookup.)
    pub fn filter_check(&mut self, addr: u64) -> bool {
        self.filter_lookups += 1;
        self.in_mapped_range(addr)
    }

    /// Range membership without counting (for tests / setup).
    pub fn in_mapped_range(&self, addr: u64) -> bool {
        match self.mapped.partition_point(|&(_, end)| end <= addr) {
            i if i < self.mapped.len() => {
                let (base, end) = self.mapped[i];
                addr >= base && addr < end
            }
            _ => false,
        }
    }

    /// SDIR lookup: which core's SPM currently holds the tile containing
    /// `addr`, if any? Counts hit/miss statistics.
    pub fn lookup_owner(&mut self, addr: u64) -> Option<u16> {
        let owner = self.resident.get(&self.tile_of(addr)).copied();
        match owner {
            Some(_) => self.sdir_hits += 1,
            None => self.sdir_misses += 1,
        }
        owner
    }

    /// Record that `core` DMA-filled the tile containing `addr`.
    pub fn set_resident(&mut self, addr: u64, core: u16) {
        let t = self.tile_of(addr);
        self.resident.insert(t, core);
    }

    /// Record that the tile containing `addr` left `core`'s SPM.
    pub fn clear_resident(&mut self, addr: u64, core: u16) {
        let t = self.tile_of(addr);
        if self.resident.get(&t) == Some(&core) {
            self.resident.remove(&t);
        }
    }

    /// Number of currently resident tiles (across all SPMs).
    pub fn resident_tiles(&self) -> usize {
        self.resident.len()
    }

    /// Consume the directory, returning the programmed mapped ranges.
    pub fn into_ranges(self) -> Vec<(u64, u64)> {
        self.mapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdir() -> SpmDirectory {
        SpmDirectory::new(vec![(4096, 8192), (16384, 32768)], 1024)
    }

    #[test]
    fn filter_membership() {
        let mut d = sdir();
        assert!(d.filter_check(4096));
        assert!(d.filter_check(8191));
        assert!(!d.filter_check(8192));
        assert!(!d.filter_check(0));
        assert!(d.filter_check(20000));
        assert_eq!(d.filter_lookups, 5);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_ranges_rejected() {
        SpmDirectory::new(vec![(0, 100), (50, 200)], 64);
    }

    #[test]
    fn residency_tracking() {
        let mut d = sdir();
        assert_eq!(d.lookup_owner(5000), None);
        d.set_resident(5000, 3);
        assert_eq!(d.lookup_owner(5000), Some(3));
        // Same tile, different offset.
        assert_eq!(d.lookup_owner(4100), Some(3));
        // Neighbouring tile is separate.
        assert_eq!(d.lookup_owner(6200), None);
        assert_eq!(d.sdir_hits, 2);
        assert_eq!(d.sdir_misses, 2);
    }

    #[test]
    fn clear_requires_matching_owner() {
        let mut d = sdir();
        d.set_resident(5000, 3);
        d.clear_resident(5000, 7); // wrong owner: no-op
        assert_eq!(d.lookup_owner(5000), Some(3));
        d.clear_resident(5000, 3);
        assert_eq!(d.lookup_owner(5000), None);
        assert_eq!(d.resident_tiles(), 0);
    }
}
