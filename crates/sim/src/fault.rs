//! Hardware-level fault substrate: bit flips, SECDED ECC, patrol
//! scrubbing and NoC CRC.
//!
//! The paper's resilience story (§4) *assumes* detected errors — "DUEs
//! arrive detected from hardware" — but detection has to be earned by a
//! mechanism. This module is that mechanism for the simulated machine:
//!
//! * [`secded`] — a real Hamming (72,64) single-error-correct /
//!   double-error-detect code over 64-bit words. Single flips are
//!   corrected in place, double flips raise a DUE, and three or more
//!   flips *miscorrect silently* — the true SDCs the ABFT layer in
//!   `raa-solver` exists to catch.
//! * [`BitFaultPlan`] — seeded, deterministic bit-level upsets: each
//!   codeword bit of each protected word flips per epoch with a raw
//!   rate, decided by hashing `(seed, structure, word, epoch, bit)` the
//!   same way the runtime's `FaultPlan` hashes task attempts. Fixed seed
//!   ⇒ bit-identical campaigns.
//! * [`EccDomain`] — one protected structure (L1 lines, SPM lines, DRAM
//!   rows): accumulates upsets per word, classifies them through the
//!   *actual* SECDED decoder on access and on patrol scrub, and charges
//!   check/correct/scrub energy to [`crate::energy::EnergyBreakdown`].
//!   Scrubbing at a short interval repairs single flips before a second
//!   upset can pair with them — the corrected/DUE/silent mix as a
//!   function of scrub interval is the campaign's central table.
//! * [`CrcLink`] — NoC packets carry a CRC; corrupted packets are
//!   detected and retransmitted (bounded retries) over the existing
//!   [`crate::noc::Mesh`], with the retry traffic and check energy
//!   accounted.
//!
//! What this module deliberately does *not* do is tell anyone about
//! ≥3-bit errors: [`EccVerdict::Silent`] exists only in the ground-truth
//! statistics. Surfacing corrected/DUE events to the runtime is
//! `raa-core::hwif`'s job (`MachineCheck`); catching the silent ones is
//! the solver's (ABFT checksums + residual probing).

use std::collections::HashMap;

use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::noc::Mesh;

// ---------------------------------------------------------------- hashing

/// splitmix64-style finalizer (same construction as the runtime's
/// `FaultPlan`): decisions are pure functions of their coordinates.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// ----------------------------------------------------------------- SECDED

/// Hamming (72,64) SEC-DED over 64-bit words.
///
/// Layout: codeword bits 1..=71 hold the Hamming code (check bits at the
/// power-of-two positions 1,2,4,8,16,32,64; the remaining 64 positions
/// hold data), bit 0 is the overall parity that upgrades SEC to SEC-DED.
///
/// Decode behaviour (the oracle-verified contract):
/// * any **single** flipped codeword bit is corrected to the original;
/// * any **double** flip is detected as a DUE and never miscorrected;
/// * **three or more** flips can alias a single-bit syndrome and
///   miscorrect — silently corrupt data — exactly the residual SDC class
///   real SECDED memories leak.
pub mod secded {
    /// Bits per codeword: 64 data + 7 check + 1 overall parity.
    pub const CODEWORD_BITS: u32 = 72;

    /// What the decoder reports for one word.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum EccOutcome {
        /// Syndrome clean: the word is (believed) intact.
        Clean,
        /// A single-bit error was corrected at this codeword position.
        Corrected(u32),
        /// Detected-uncorrectable error: the data is lost, but the loss
        /// is *known* — the machine-check path can act on it.
        Due,
    }

    fn is_check_pos(p: u32) -> bool {
        p.is_power_of_two()
    }

    /// Encode a 64-bit word into a 72-bit SECDED codeword.
    pub fn encode(data: u64) -> u128 {
        let mut cw: u128 = 0;
        let mut d = 0u32;
        for p in 1..CODEWORD_BITS {
            if is_check_pos(p) {
                continue;
            }
            if (data >> d) & 1 == 1 {
                cw |= 1u128 << p;
            }
            d += 1;
        }
        for c in [1u32, 2, 4, 8, 16, 32, 64] {
            let mut parity = 0u32;
            for p in 1..CODEWORD_BITS {
                if p & c != 0 && (cw >> p) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                cw |= 1u128 << c;
            }
        }
        if cw.count_ones() % 2 == 1 {
            cw |= 1; // overall parity bit
        }
        cw
    }

    /// Decode a possibly corrupted codeword: returns the (corrected when
    /// possible) data word and the decoder's verdict.
    pub fn decode(mut cw: u128) -> (u64, EccOutcome) {
        let mut syndrome = 0u32;
        for p in 1..CODEWORD_BITS {
            if (cw >> p) & 1 == 1 {
                syndrome ^= p;
            }
        }
        let parity_even = cw.count_ones().is_multiple_of(2);
        let outcome = match (syndrome, parity_even) {
            (0, true) => EccOutcome::Clean,
            (0, false) => {
                // Only the overall parity bit flipped.
                cw ^= 1;
                EccOutcome::Corrected(0)
            }
            (s, false) if s < CODEWORD_BITS => {
                cw ^= 1u128 << s;
                EccOutcome::Corrected(s)
            }
            // Odd number of flips (>= 3) whose syndrome points outside
            // the codeword: the error betrayed itself.
            (_, false) => EccOutcome::Due,
            // Even flip count with a non-zero syndrome: the double-error
            // signature.
            (_, true) => EccOutcome::Due,
        };
        (extract(cw), outcome)
    }

    /// Pull the 64 data bits back out of a codeword.
    pub fn extract(cw: u128) -> u64 {
        let mut data = 0u64;
        let mut d = 0u32;
        for p in 1..CODEWORD_BITS {
            if is_check_pos(p) {
                continue;
            }
            if (cw >> p) & 1 == 1 {
                data |= 1u64 << d;
            }
            d += 1;
        }
        data
    }
}

// ----------------------------------------------------------- fault plan

/// Which protected structure a word (or packet) lives in. Part of every
/// injection decision and of the machine-check events `raa-core` builds
/// from ECC verdicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemStructure {
    L1,
    L2,
    Spm,
    Dram,
    Noc,
}

impl MemStructure {
    fn salt(self) -> u64 {
        match self {
            MemStructure::L1 => 0x9E37_79B9_7F4A_7C15,
            MemStructure::L2 => 0xC2B2_AE3D_27D4_EB4F,
            MemStructure::Spm => 0x1656_67B1_9E37_79F9,
            MemStructure::Dram => 0x2545_F491_4F6C_DD1D,
            MemStructure::Noc => 0x8563_9728_3F4A_9C11,
        }
    }
}

/// A seeded, deterministic bit-upset plan: every codeword bit of every
/// protected word flips with probability `rate` per epoch, decided by
/// hashing — no shared RNG state, so domains can be injected in any
/// order and campaigns replay bit-identically.
#[derive(Clone, Copy, Debug)]
pub struct BitFaultPlan {
    seed: u64,
    rate: f64,
}

impl BitFaultPlan {
    pub fn new(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        BitFaultPlan { seed, rate }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mask of codeword bits that flip in `word` of `structure`
    /// during `epoch`.
    pub fn flips(&self, structure: MemStructure, word: u64, epoch: u64) -> u128 {
        if self.rate <= 0.0 {
            return 0;
        }
        let base = mix(self.seed ^ structure.salt()) ^ mix(word).rotate_left(17) ^ epoch;
        let mut mask = 0u128;
        for bit in 0..secded::CODEWORD_BITS {
            if unit(mix(base
                ^ ((bit as u64) << 56)
                ^ epoch.wrapping_mul(0x9E37_79B9)))
                < self.rate
            {
                mask |= 1u128 << bit;
            }
        }
        mask
    }
}

// ------------------------------------------------------------ ECC domain

/// Ground-truth classification of one ECC check. `Silent` is what the
/// decoder *cannot* see — it thought it corrected (or saw nothing) but
/// the data is wrong. Only the campaign's ground truth and the solver's
/// ABFT layer can observe it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EccVerdict {
    Clean,
    Corrected,
    Due,
    Silent,
}

/// One checked word: the raw material for `raa-core`'s `MachineCheck`
/// events (which forward `Corrected` and `Due` — never `Silent`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EccEvent {
    pub structure: MemStructure,
    /// Protected word address (word granularity, 8 bytes).
    pub addr: u64,
    pub verdict: EccVerdict,
}

/// Counters for one protected domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EccStats {
    /// Decoder invocations (demand checks + scrub sweeps).
    pub checks: u64,
    pub corrected: u64,
    pub due: u64,
    /// Ground truth only: words whose data is wrong while the decoder
    /// reported Clean/Corrected.
    pub silent: u64,
    /// Words swept by the patrol scrubber.
    pub scrubbed: u64,
}

/// Outcome of one patrol-scrub sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubSummary {
    pub scanned: u64,
    pub corrected: u64,
    pub due: u64,
    pub silent: u64,
}

/// One SECDED-protected structure: a population of word addresses
/// (resident cache lines × 8, SPM lines × 8, DRAM rows × N) with an
/// accumulated upset mask per word.
///
/// Upsets accumulate between checks; a check (demand access or scrub)
/// runs the real decoder on `encode(reference) ^ mask` and repairs what
/// SECDED can repair. The race the scrub interval controls is upset
/// accumulation vs. repair: scrub often enough and almost every upset is
/// met alone (corrected); scrub rarely and pairs (DUE) then triples
/// (silent) build up.
#[derive(Clone, Debug)]
pub struct EccDomain {
    pub structure: MemStructure,
    population: Vec<u64>,
    /// Accumulated flipped codeword bits per word (absent = clean).
    pending: HashMap<u64, u128>,
    pub stats: EccStats,
}

impl EccDomain {
    /// A domain protecting the given word addresses.
    pub fn new(structure: MemStructure, mut population: Vec<u64>) -> Self {
        population.sort_unstable();
        population.dedup();
        EccDomain {
            structure,
            population,
            pending: HashMap::new(),
            stats: EccStats::default(),
        }
    }

    /// A domain over the 8 words of each 64-byte line (cache / SPM
    /// residency sets).
    pub fn over_lines(structure: MemStructure, lines: impl IntoIterator<Item = u64>) -> Self {
        let words = lines
            .into_iter()
            .flat_map(|l| (0..8).map(move |w| l * 8 + w))
            .collect();
        EccDomain::new(structure, words)
    }

    /// Protected words.
    pub fn population(&self) -> &[u64] {
        &self.population
    }

    /// Deterministic reference data for a word (the "true" contents the
    /// silent-corruption ground truth compares against).
    fn reference(&self, addr: u64) -> u64 {
        mix(addr ^ self.structure.salt())
    }

    /// Accumulate one epoch of upsets from `plan` over the population.
    /// Flips XOR into the pending mask: a bit hit twice reverts, as in
    /// the physical process.
    pub fn inject(&mut self, plan: &BitFaultPlan, epoch: u64) -> u64 {
        let mut upsets = 0u64;
        for &w in &self.population {
            let mask = plan.flips(self.structure, w, epoch);
            if mask != 0 {
                upsets += mask.count_ones() as u64;
                let m = self.pending.entry(w).or_insert(0);
                *m ^= mask;
                if *m == 0 {
                    self.pending.remove(&w);
                }
            }
        }
        upsets
    }

    /// Directly flip codeword bits of one word (targeted injection for
    /// tests and the machine-check campaign).
    pub fn inject_word(&mut self, addr: u64, mask: u128) {
        if mask == 0 {
            return;
        }
        let m = self.pending.entry(addr).or_insert(0);
        *m ^= mask;
        if *m == 0 {
            self.pending.remove(&addr);
        }
    }

    fn classify(&mut self, addr: u64) -> EccVerdict {
        self.stats.checks += 1;
        let Some(mask) = self.pending.remove(&addr) else {
            return EccVerdict::Clean;
        };
        let reference = self.reference(addr);
        let (decoded, outcome) = secded::decode(secded::encode(reference) ^ mask);
        match outcome {
            secded::EccOutcome::Due => {
                self.stats.due += 1;
                EccVerdict::Due
            }
            // Clean / Corrected as far as the decoder knows — but did the
            // data survive? (≥3 flips can miscorrect; check-bit-only
            // flips are harmless.)
            _ if decoded == reference => {
                if matches!(outcome, secded::EccOutcome::Corrected(_)) {
                    self.stats.corrected += 1;
                    EccVerdict::Corrected
                } else {
                    EccVerdict::Clean
                }
            }
            _ => {
                self.stats.silent += 1;
                EccVerdict::Silent
            }
        }
    }

    /// Demand access to `addr`: run the decoder, repair/clear the word's
    /// pending state, charge check (+ correct) energy, and report the
    /// event. `Silent` events are ground truth — the hardware would
    /// return corrupt data with a straight face.
    pub fn access(
        &mut self,
        addr: u64,
        model: &EnergyModel,
        energy: &mut EnergyBreakdown,
    ) -> EccEvent {
        energy.ecc += model.ecc_check;
        let verdict = self.classify(addr);
        if verdict == EccVerdict::Corrected {
            energy.ecc += model.ecc_correct;
        }
        EccEvent {
            structure: self.structure,
            addr,
            verdict,
        }
    }

    /// One patrol-scrub sweep over the whole population: every word is
    /// read, decoded and rewritten clean when correctable. Returns the
    /// sweep summary; DUE events discovered by the scrubber are returned
    /// so the machine-check path can surface them.
    pub fn scrub(
        &mut self,
        model: &EnergyModel,
        energy: &mut EnergyBreakdown,
    ) -> (ScrubSummary, Vec<EccEvent>) {
        let mut summary = ScrubSummary::default();
        let mut events = Vec::new();
        // Only words with pending upsets need the decoder; every word
        // pays the sweep (read + check) energy.
        summary.scanned = self.population.len() as u64;
        self.stats.scrubbed += summary.scanned;
        energy.scrub += model.scrub_word * summary.scanned as f64;
        let dirty: Vec<u64> = self.pending.keys().copied().collect();
        for addr in dirty {
            self.stats.checks += 1;
            self.stats.checks -= 1; // classify() bumps it
            match self.classify(addr) {
                EccVerdict::Corrected => {
                    summary.corrected += 1;
                    energy.ecc += model.ecc_correct;
                }
                EccVerdict::Due => {
                    summary.due += 1;
                    events.push(EccEvent {
                        structure: self.structure,
                        addr,
                        verdict: EccVerdict::Due,
                    });
                }
                EccVerdict::Silent => summary.silent += 1,
                EccVerdict::Clean => {}
            }
        }
        (summary, events)
    }

    /// Words currently carrying unchecked upsets (diagnostics).
    pub fn pending_words(&self) -> usize {
        self.pending.len()
    }
}

// -------------------------------------------------------------- NoC CRC

/// CRC-checked NoC transfers with bounded retransmission over an
/// existing [`Mesh`].
///
/// Per attempt, the packet is corrupted with probability
/// `1 − (1 − rate)^bits` (independent per-bit upsets); a corrupted
/// packet fails its CRC check and is retransmitted. A 32-bit CRC's
/// undetected-error residual (≈2⁻³²) is modelled as zero — every
/// corruption is caught, which is why NoC faults never contribute to
/// the silent class.
#[derive(Clone, Debug)]
pub struct CrcLink {
    seed: u64,
    /// Payload bits per flit (checked by the CRC).
    pub flit_bits: u32,
    /// Retransmissions before the link gives up (counts as a DUE).
    pub max_retries: u32,
    pub packets: u64,
    pub corrupted: u64,
    pub retries: u64,
    /// Packets dropped after `max_retries` (link-level DUE).
    pub failed: u64,
}

impl CrcLink {
    pub fn new(seed: u64) -> Self {
        CrcLink {
            seed,
            flit_bits: 128,
            max_retries: 8,
            packets: 0,
            corrupted: 0,
            retries: 0,
            failed: 0,
        }
    }

    /// Send `flits` from `from` to `to` under per-bit upset rate `rate`.
    /// Returns `(total_latency, delivered)`; retries re-inject the full
    /// packet into the mesh (traffic and energy are charged per attempt).
    #[allow(clippy::too_many_arguments)]
    pub fn send_checked(
        &mut self,
        mesh: &mut Mesh,
        model: &EnergyModel,
        energy: &mut EnergyBreakdown,
        from: usize,
        to: usize,
        flits: u64,
        packet: u64,
        rate: f64,
    ) -> (u64, bool) {
        self.packets += 1;
        let bits = flits * self.flit_bits as u64;
        let p_corrupt = 1.0 - (1.0 - rate).powi(bits.min(1 << 20) as i32);
        let hops = mesh.hops(from, to);
        let mut latency = 0u64;
        for attempt in 0..=self.max_retries {
            latency += mesh.send(from, to, flits);
            energy.noc += model.noc_flit_hop * (flits * hops) as f64;
            energy.crc += model.crc_check;
            let h =
                mix(mix(self.seed ^ MemStructure::Noc.salt()) ^ packet ^ ((attempt as u64) << 48));
            if unit(h) >= p_corrupt {
                return (latency, true);
            }
            self.corrupted += 1;
            if attempt < self.max_retries {
                self.retries += 1;
            }
        }
        self.failed += 1;
        (latency, false)
    }
}

#[cfg(test)]
mod tests {
    use super::secded::{decode, encode, extract, EccOutcome, CODEWORD_BITS};
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_roundtrip() {
        for w in [0u64, u64::MAX, 0xDEAD_BEEF_0BAD_F00D, 1, 1 << 63] {
            let cw = encode(w);
            assert_eq!(decode(cw), (w, EccOutcome::Clean));
            assert_eq!(extract(cw), w);
        }
    }

    #[test]
    fn every_single_bit_error_corrected_exhaustive() {
        let w = 0xA5A5_5A5A_0F0F_F0F0u64;
        let cw = encode(w);
        for bit in 0..CODEWORD_BITS {
            let (got, outcome) = decode(cw ^ (1u128 << bit));
            assert_eq!(got, w, "bit {bit} not corrected");
            assert_eq!(outcome, EccOutcome::Corrected(bit));
        }
    }

    #[test]
    fn every_double_bit_error_is_a_due_exhaustive() {
        let w = 0x0123_4567_89AB_CDEFu64;
        let cw = encode(w);
        for a in 0..CODEWORD_BITS {
            for b in (a + 1)..CODEWORD_BITS {
                let (_, outcome) = decode(cw ^ (1u128 << a) ^ (1u128 << b));
                assert_eq!(outcome, EccOutcome::Due, "flips {a},{b} not detected");
            }
        }
    }

    #[test]
    fn triple_errors_can_miscorrect_silently() {
        // 3 data-bit flips whose syndrome aliases a single position: the
        // decoder "corrects" the wrong bit and returns wrong data without
        // raising anything — the residual SDC class.
        let w = 0u64;
        let cw = encode(w);
        let mut silent = 0;
        for (a, b, c) in [(3u32, 5, 6), (9, 10, 3), (33, 34, 3), (7, 11, 12)] {
            let (got, outcome) = decode(cw ^ (1u128 << a) ^ (1u128 << b) ^ (1u128 << c));
            if outcome != EccOutcome::Due && got != w {
                silent += 1;
            }
        }
        assert!(silent > 0, "some triple errors must slip through");
    }

    proptest! {
        /// Satellite: the encode/correct/detect path vs a brute-force
        /// oracle over random 64-bit words — every 1-bit error corrected
        /// back to the original, every 2-bit error detected as a DUE and
        /// never miscorrected.
        #[test]
        fn secded_matches_brute_force_oracle(word in any::<u64>()) {
            let cw = encode(word);
            prop_assert_eq!(decode(cw), (word, EccOutcome::Clean));
            for a in 0..CODEWORD_BITS {
                let (got, outcome) = decode(cw ^ (1u128 << a));
                prop_assert_eq!(got, word);
                prop_assert_eq!(outcome, EccOutcome::Corrected(a));
                for b in (a + 1)..CODEWORD_BITS {
                    let (_, outcome) = decode(cw ^ (1u128 << a) ^ (1u128 << b));
                    prop_assert_eq!(outcome, EccOutcome::Due);
                }
            }
        }
    }

    #[test]
    fn plan_is_deterministic_and_rate_roughly_respected() {
        let plan = BitFaultPlan::new(42, 0.01);
        let again = BitFaultPlan::new(42, 0.01);
        let mut flips = 0u64;
        let words = 400u64;
        let epochs = 20u64;
        for w in 0..words {
            for e in 0..epochs {
                let m = plan.flips(MemStructure::Dram, w, e);
                assert_eq!(m, again.flips(MemStructure::Dram, w, e));
                flips += m.count_ones() as u64;
            }
        }
        let expect = words as f64 * epochs as f64 * CODEWORD_BITS as f64 * 0.01;
        let got = flips as f64;
        assert!(
            (0.7 * expect..1.3 * expect).contains(&got),
            "flip count {got} vs expected {expect}"
        );
        // Structures draw independent patterns.
        assert_ne!(
            plan.flips(MemStructure::L1, 7, 3) | plan.flips(MemStructure::Spm, 7, 3),
            plan.flips(MemStructure::Dram, 7, 3)
                | plan.flips(MemStructure::L1, 7, 3)
                | plan.flips(MemStructure::Spm, 7, 3)
                | 1
        );
    }

    #[test]
    fn domain_classifies_single_double_triple() {
        let model = EnergyModel::default();
        let mut energy = EnergyBreakdown::default();
        let mut dom = EccDomain::new(MemStructure::Spm, vec![1, 2, 3, 4]);
        dom.inject_word(1, 1 << 5);
        dom.inject_word(2, (1 << 5) | (1 << 9));
        dom.inject_word(3, 0b111 << 3); // three data-position flips
        assert_eq!(
            dom.access(1, &model, &mut energy).verdict,
            EccVerdict::Corrected
        );
        assert_eq!(dom.access(2, &model, &mut energy).verdict, EccVerdict::Due);
        let v3 = dom.access(3, &model, &mut energy).verdict;
        assert!(
            matches!(v3, EccVerdict::Silent | EccVerdict::Due),
            "triple is silent or (lucky syndrome) detected, got {v3:?}"
        );
        assert_eq!(
            dom.access(4, &model, &mut energy).verdict,
            EccVerdict::Clean
        );
        assert_eq!(dom.stats.corrected, 1);
        assert_eq!(dom.stats.due + dom.stats.silent, 2);
        assert!(energy.ecc > 0.0);
    }

    #[test]
    fn double_injection_of_same_bit_reverts() {
        let mut dom = EccDomain::new(MemStructure::L1, vec![7]);
        dom.inject_word(7, 1 << 11);
        dom.inject_word(7, 1 << 11);
        assert_eq!(dom.pending_words(), 0, "x ^ x must cancel");
    }

    #[test]
    fn scrub_repairs_singles_and_charges_energy() {
        let model = EnergyModel::default();
        let mut energy = EnergyBreakdown::default();
        let mut dom = EccDomain::new(MemStructure::Dram, (0..64).collect());
        dom.inject_word(3, 1 << 4);
        dom.inject_word(9, 1 << 60);
        dom.inject_word(20, (1 << 4) | (1 << 33));
        let (summary, events) = dom.scrub(&model, &mut energy);
        assert_eq!(summary.scanned, 64);
        assert_eq!(summary.corrected, 2);
        assert_eq!(summary.due, 1);
        assert_eq!(events.len(), 1, "the DUE surfaces as an event");
        assert_eq!(events[0].addr, 20);
        assert_eq!(dom.pending_words(), 0, "scrub clears everything it saw");
        assert!((energy.scrub - 64.0 * model.scrub_word).abs() < 1e-12);
        assert!((energy.ecc - 2.0 * model.ecc_correct).abs() < 1e-12);
    }

    #[test]
    fn frequent_scrubbing_beats_accumulation() {
        // Same plan, same epochs; the only difference is scrub cadence.
        // Tight scrubbing meets upsets alone (corrected); no scrubbing
        // lets them pair and triple.
        let model = EnergyModel::default();
        let run = |interval: u64| {
            // Rate chosen so a *single* epoch almost never pairs two
            // flips in one word, but 96 epochs of accumulation do —
            // the regime patrol scrubbing exists for.
            let plan = BitFaultPlan::new(7, 2e-4);
            let mut dom = EccDomain::new(MemStructure::Dram, (0..256).collect());
            let mut energy = EnergyBreakdown::default();
            for epoch in 0..96 {
                dom.inject(&plan, epoch);
                if interval > 0 && (epoch + 1) % interval == 0 {
                    dom.scrub(&model, &mut energy);
                }
            }
            dom.scrub(&model, &mut energy);
            dom.stats
        };
        let tight = run(1);
        let never = run(0);
        assert!(
            tight.due + tight.silent < never.due + never.silent,
            "tight scrub {tight:?} must leak fewer uncorrectables than none {never:?}"
        );
        assert!(tight.corrected > never.corrected);
    }

    #[test]
    fn crc_link_detects_and_retries() {
        let model = EnergyModel::default();
        let mut energy = EnergyBreakdown::default();
        let mut mesh = Mesh::new(4, 2);
        let mut link = CrcLink::new(42);
        let mut delivered = 0;
        for pkt in 0..200u64 {
            let (_, ok) = link.send_checked(&mut mesh, &model, &mut energy, 0, 15, 4, pkt, 1e-3);
            if ok {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 200, "retries must deliver at this rate");
        assert!(link.corrupted > 0, "some packets must have been corrupted");
        assert_eq!(link.retries, link.corrupted, "every corruption retried");
        assert_eq!(link.failed, 0);
        assert!(energy.crc > 0.0);
        // Retry traffic showed up in the mesh counters.
        assert!(mesh.messages > 200);
    }

    #[test]
    fn crc_link_gives_up_at_rate_one() {
        let model = EnergyModel::default();
        let mut energy = EnergyBreakdown::default();
        let mut mesh = Mesh::new(4, 1);
        let mut link = CrcLink::new(1);
        let (_, ok) = link.send_checked(&mut mesh, &model, &mut energy, 0, 3, 2, 0, 1.0);
        assert!(!ok, "total corruption must exhaust retries");
        assert_eq!(link.failed, 1);
    }

    #[test]
    fn over_lines_expands_to_words() {
        let dom = EccDomain::over_lines(MemStructure::L1, [2u64, 5]);
        assert_eq!(dom.population().len(), 16);
        assert!(dom.population().contains(&16) && dom.population().contains(&47));
    }
}
