//! Directory-based MESI coherence for the private L1 caches.
//!
//! The directory lives with the L2 banks and tracks, per line, whether
//! the line is uncached, **exclusive** in one L1 (clean, sole copy),
//! shared by a set of L1s, or **modified** in exactly one L1.  The E
//! state is what makes private data cheap: the first reader is granted
//! exclusivity and its subsequent store upgrades silently, with no
//! directory round trip or invalidations.  The machine charges NoC
//! messages and latencies based on the actions this module reports
//! (owner downgrades, invalidations).

use std::collections::HashMap;

/// Directory state of one line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineState {
    Uncached,
    /// Sole clean copy in one L1 (silent-upgrade permission).
    Exclusive(u16),
    /// Bitmask of sharer cores (supports up to 128 tiles).
    Shared(u128),
    /// Single owner with write permission.
    Modified(u16),
}

/// What a read miss requires before data can be returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadActions {
    /// An owner whose dirty copy must be downgraded/written back first.
    pub downgrade_owner: Option<u16>,
}

/// What a write (exclusive request) requires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteActions {
    /// Sharers (other than the requester) to invalidate.
    pub invalidate: Vec<u16>,
    /// A modified owner whose copy must be fetched & invalidated.
    pub fetch_owner: Option<u16>,
}

/// The coherence directory.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    lines: HashMap<u64, LineState>,
    pub read_misses: u64,
    pub write_misses: u64,
    pub invalidations: u64,
    pub downgrades: u64,
}

impl Directory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Core `who` gains a copy of `line`: Exclusive when it is the only
    /// holder, Shared otherwise.
    pub fn read(&mut self, line: u64, who: u16) -> ReadActions {
        self.read_misses += 1;
        let st = self.lines.entry(line).or_insert(LineState::Uncached);
        match *st {
            LineState::Uncached => {
                *st = LineState::Exclusive(who);
                ReadActions {
                    downgrade_owner: None,
                }
            }
            LineState::Exclusive(holder) => {
                if holder == who {
                    ReadActions {
                        downgrade_owner: None,
                    }
                } else {
                    // E→S: the holder's copy is clean, no writeback.
                    *st = LineState::Shared((1u128 << holder) | (1u128 << who));
                    ReadActions {
                        downgrade_owner: None,
                    }
                }
            }
            LineState::Shared(mask) => {
                *st = LineState::Shared(mask | (1u128 << who));
                ReadActions {
                    downgrade_owner: None,
                }
            }
            LineState::Modified(owner) => {
                if owner == who {
                    // Silent hit in the owner; directory unchanged.
                    ReadActions {
                        downgrade_owner: None,
                    }
                } else {
                    self.downgrades += 1;
                    *st = LineState::Shared((1u128 << owner) | (1u128 << who));
                    ReadActions {
                        downgrade_owner: Some(owner),
                    }
                }
            }
        }
    }

    /// Core `who` gains exclusive (modified) ownership of `line`.
    pub fn write(&mut self, line: u64, who: u16) -> WriteActions {
        self.write_misses += 1;
        let st = self.lines.entry(line).or_insert(LineState::Uncached);
        let actions = match *st {
            LineState::Uncached => WriteActions {
                invalidate: Vec::new(),
                fetch_owner: None,
            },
            LineState::Exclusive(holder) => {
                if holder == who {
                    // The silent E→M upgrade: no traffic at all.
                    WriteActions {
                        invalidate: Vec::new(),
                        fetch_owner: None,
                    }
                } else {
                    self.invalidations += 1;
                    WriteActions {
                        invalidate: vec![holder],
                        fetch_owner: None,
                    }
                }
            }
            LineState::Shared(mask) => {
                let mut inval = Vec::new();
                for c in 0..128u16 {
                    if mask & (1u128 << c) != 0 && c != who {
                        inval.push(c);
                    }
                }
                self.invalidations += inval.len() as u64;
                WriteActions {
                    invalidate: inval,
                    fetch_owner: None,
                }
            }
            LineState::Modified(owner) => {
                if owner == who {
                    WriteActions {
                        invalidate: Vec::new(),
                        fetch_owner: None,
                    }
                } else {
                    self.invalidations += 1;
                    WriteActions {
                        invalidate: Vec::new(),
                        fetch_owner: Some(owner),
                    }
                }
            }
        };
        *st = LineState::Modified(who);
        actions
    }

    /// Core `who` silently drops its copy (L1 eviction).
    pub fn evict(&mut self, line: u64, who: u16) {
        if let Some(st) = self.lines.get_mut(&line) {
            match *st {
                LineState::Shared(mask) => {
                    let m = mask & !(1u128 << who);
                    *st = if m == 0 {
                        LineState::Uncached
                    } else {
                        LineState::Shared(m)
                    };
                }
                LineState::Exclusive(holder) if holder == who => {
                    *st = LineState::Uncached;
                }
                LineState::Modified(owner) if owner == who => {
                    *st = LineState::Uncached;
                }
                _ => {}
            }
        }
    }

    /// Remove all directory state for `line`, returning every core that
    /// held a copy (used when a DMA fill pulls a line into an SPM and the
    /// cached copies must be invalidated).
    pub fn purge(&mut self, line: u64) -> Vec<u16> {
        match self.lines.remove(&line) {
            None | Some(LineState::Uncached) => Vec::new(),
            Some(LineState::Exclusive(holder)) => {
                self.invalidations += 1;
                vec![holder]
            }
            Some(LineState::Shared(mask)) => {
                let holders: Vec<u16> = (0..128u16).filter(|c| mask & (1u128 << c) != 0).collect();
                self.invalidations += holders.len() as u64;
                holders
            }
            Some(LineState::Modified(owner)) => {
                self.invalidations += 1;
                vec![owner]
            }
        }
    }

    /// Current state of a line (for tests/inspection).
    pub fn state(&self, line: u64) -> LineState {
        self.lines
            .get(&line)
            .copied()
            .unwrap_or(LineState::Uncached)
    }

    /// Number of lines with directory state.
    pub fn tracked(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reader_gets_exclusive_then_shares() {
        let mut d = Directory::new();
        assert_eq!(d.read(10, 0).downgrade_owner, None);
        assert_eq!(d.state(10), LineState::Exclusive(0));
        assert_eq!(d.read(10, 3).downgrade_owner, None);
        assert_eq!(d.state(10), LineState::Shared(0b1001));
    }

    #[test]
    fn exclusive_upgrades_silently() {
        let mut d = Directory::new();
        d.read(10, 5);
        let a = d.write(10, 5);
        assert!(a.invalidate.is_empty(), "E→M is silent");
        assert_eq!(a.fetch_owner, None);
        assert_eq!(d.state(10), LineState::Modified(5));
        assert_eq!(d.invalidations, 0);
    }

    #[test]
    fn foreign_write_invalidates_exclusive_holder() {
        let mut d = Directory::new();
        d.read(10, 5);
        let a = d.write(10, 2);
        assert_eq!(a.invalidate, vec![5]);
        assert_eq!(d.state(10), LineState::Modified(2));
    }

    #[test]
    fn exclusive_holder_eviction_clears() {
        let mut d = Directory::new();
        d.read(10, 4);
        d.evict(10, 4);
        assert_eq!(d.state(10), LineState::Uncached);
        // Purge of an exclusive line reports the holder.
        d.read(11, 6);
        assert_eq!(d.purge(11), vec![6]);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read(10, 0);
        d.read(10, 1);
        d.read(10, 2);
        let a = d.write(10, 1);
        assert_eq!(a.invalidate, vec![0, 2]);
        assert_eq!(a.fetch_owner, None);
        assert_eq!(d.state(10), LineState::Modified(1));
        assert_eq!(d.invalidations, 2);
    }

    #[test]
    fn remote_read_downgrades_owner() {
        let mut d = Directory::new();
        d.write(10, 5);
        let a = d.read(10, 2);
        assert_eq!(a.downgrade_owner, Some(5));
        assert_eq!(d.state(10), LineState::Shared((1 << 5) | (1 << 2)));
        assert_eq!(d.downgrades, 1);
    }

    #[test]
    fn owner_reads_own_modified_line_silently() {
        let mut d = Directory::new();
        d.write(10, 5);
        let a = d.read(10, 5);
        assert_eq!(a.downgrade_owner, None);
        assert_eq!(d.state(10), LineState::Modified(5));
    }

    #[test]
    fn write_steals_modified_line() {
        let mut d = Directory::new();
        d.write(10, 0);
        let a = d.write(10, 1);
        assert_eq!(a.fetch_owner, Some(0));
        assert_eq!(d.state(10), LineState::Modified(1));
    }

    #[test]
    fn eviction_clears_state() {
        let mut d = Directory::new();
        d.read(10, 0);
        d.read(10, 1);
        d.evict(10, 0);
        assert_eq!(d.state(10), LineState::Shared(0b10));
        d.evict(10, 1);
        assert_eq!(d.state(10), LineState::Uncached);
        // Evicting a modified line.
        d.write(11, 4);
        d.evict(11, 4);
        assert_eq!(d.state(11), LineState::Uncached);
        // Foreign eviction does not clobber the owner.
        d.write(12, 4);
        d.evict(12, 5);
        assert_eq!(d.state(12), LineState::Modified(4));
    }

    #[test]
    fn self_write_on_own_modified_is_free() {
        let mut d = Directory::new();
        d.write(10, 7);
        let a = d.write(10, 7);
        assert!(a.invalidate.is_empty());
        assert_eq!(a.fetch_owner, None);
    }
}
