//! Energy model: CACTI-class per-event energies plus leakage.
//!
//! Absolute joules are not the claim — the *ratios* between SPM, cache,
//! NoC and DRAM event energies are, and those are standard: an SPM access
//! costs roughly 40% of an equally sized cache access (no tag array, no
//! associative lookup), DRAM costs ~20× an L1 access, and so on.

/// Per-event energies in nanojoules.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    pub l1_access: f64,
    pub spm_access: f64,
    pub l2_access: f64,
    pub dram_access: f64,
    /// Per flit-hop.
    pub noc_flit_hop: f64,
    /// Coherence directory lookup/update.
    pub dir_lookup: f64,
    /// SPM-directory / alias-filter lookup.
    pub filter_lookup: f64,
    /// DMA engine programming.
    pub dma_setup: f64,
    /// Static leakage per core per cycle. Sized so static energy is a
    /// realistic ~30-40% of the total on these workloads — this couples
    /// the energy metric to execution time, as in real chips.
    pub leak_core_cycle: f64,
    /// SECDED syndrome computation on a word access (the always-on tax
    /// of an ECC-protected array — a small fraction of the access).
    pub ecc_check: f64,
    /// Correcting a flagged single-bit error (rewrite of the word).
    pub ecc_correct: f64,
    /// Patrol scrubber visiting one word (read + check + conditional
    /// writeback, amortised).
    pub scrub_word: f64,
    /// CRC check of one NoC packet at the receiver.
    pub crc_check: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            l1_access: 0.10,
            spm_access: 0.04,
            l2_access: 0.25,
            dram_access: 2.00,
            noc_flit_hop: 0.010,
            dir_lookup: 0.020,
            filter_lookup: 0.008,
            dma_setup: 0.05,
            leak_core_cycle: 0.05,
            ecc_check: 0.003,
            ecc_correct: 0.06,
            scrub_word: 0.012,
            crc_check: 0.015,
        }
    }
}

/// Accumulated energy, broken down by component.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    pub l1: f64,
    pub spm: f64,
    pub l2: f64,
    pub dram: f64,
    pub noc: f64,
    pub directory: f64,
    pub filter: f64,
    pub dma: f64,
    pub leakage: f64,
    /// ECC syndrome checks + corrections (demand path).
    pub ecc: f64,
    /// Patrol-scrub sweeps.
    pub scrub: f64,
    /// NoC CRC checks (including retransmissions).
    pub crc: f64,
}

impl EnergyBreakdown {
    /// Total nanojoules.
    pub fn total(&self) -> f64 {
        self.l1
            + self.spm
            + self.l2
            + self.dram
            + self.noc
            + self.directory
            + self.filter
            + self.dma
            + self.leakage
            + self.ecc
            + self.scrub
            + self.crc
    }

    /// Add another breakdown in place.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.l1 += other.l1;
        self.spm += other.spm;
        self.l2 += other.l2;
        self.dram += other.dram;
        self.noc += other.noc;
        self.directory += other.directory;
        self.filter += other.filter;
        self.dma += other.dma;
        self.leakage += other.leakage;
        self.ecc += other.ecc;
        self.scrub += other.scrub;
        self.crc += other.crc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spm_cheaper_than_l1_cheaper_than_l2() {
        let m = EnergyModel::default();
        assert!(m.spm_access < m.l1_access);
        assert!(m.l1_access < m.l2_access);
        assert!(m.l2_access < m.dram_access);
    }

    #[test]
    fn total_sums_components() {
        let b = EnergyBreakdown {
            l1: 1.0,
            spm: 2.0,
            l2: 3.0,
            dram: 4.0,
            noc: 5.0,
            directory: 6.0,
            filter: 7.0,
            dma: 8.0,
            leakage: 9.0,
            ecc: 10.0,
            scrub: 11.0,
            crc: 12.0,
        };
        assert!((b.total() - 78.0).abs() < 1e-12);
    }

    #[test]
    fn resilience_events_are_cheap_relative_to_accesses() {
        // The ECC/scrub tax must stay a small fraction of the access it
        // protects, or the substrate would dominate the Fig. 1 ratios.
        let m = EnergyModel::default();
        assert!(m.ecc_check < 0.1 * m.spm_access);
        assert!(m.ecc_correct < m.l1_access);
        assert!(m.scrub_word < m.spm_access);
        assert!(m.crc_check < m.l2_access);
    }

    #[test]
    fn accumulate_adds_fieldwise() {
        let mut a = EnergyBreakdown::default();
        let b = EnergyBreakdown {
            l1: 1.5,
            dram: 2.5,
            ..Default::default()
        };
        a.accumulate(&b);
        a.accumulate(&b);
        assert!((a.l1 - 3.0).abs() < 1e-12);
        assert!((a.dram - 5.0).abs() < 1e-12);
        assert!((a.total() - 8.0).abs() < 1e-12);
    }
}
