//! The tiled-CMP trace executor.
//!
//! A [`Machine`] holds one tile per core (core + private L1 + SPM), a
//! shared banked L2 with a coherence directory, the SPM directory/filter
//! of the hybrid protocol, a 2-D mesh and DRAM behind the mesh corners.
//! [`Machine::run_kernel`] pulls every core's trace in (approximate)
//! global time order and routes each reference:
//!
//! * **cache-only mode** — every reference takes the L1 → directory/L2 →
//!   DRAM path with MESI coherence;
//! * **hybrid mode** — strided references to compiler-mapped ranges hit
//!   the local SPM (DMA-tiled), random-no-alias references take the cache
//!   path, and unknown-alias references consult the filter + SPM
//!   directory and are served by whichever memory holds the valid copy.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use raa_workloads::{Kernel, MemRef, RefClass, TraceEvent};

use crate::cache::{AccessResult, Cache};
use crate::coherence::Directory;
use crate::config::{HierarchyMode, MachineConfig};
use crate::dram::Dram;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::hybrid::SpmDirectory;
use crate::noc::Mesh;
use crate::spm::{SpmAccess, SpmState};

/// One tracked prefetch stream.
#[derive(Clone, Copy, Debug)]
struct StreamEntry {
    last: u64,
    delta: i64,
}

/// Execution report: the three Fig. 1 metrics plus component detail.
#[derive(Clone, Debug)]
pub struct MachineReport {
    /// Execution time: the slowest core's cycle count.
    pub cycles: u64,
    /// Energy breakdown (leakage included).
    pub energy: EnergyBreakdown,
    /// Total NoC flits injected (the Fig. 1 traffic metric).
    pub noc_flits: u64,
    /// Flits × hops (energy-weighted traffic).
    pub noc_flit_hops: u64,
    pub mem_refs: u64,
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub spm_hits: u64,
    pub spm_fills: u64,
    pub remote_spm_refs: u64,
    pub dram_accesses: u64,
    pub invalidations: u64,
    /// Cross-SPM single-writer invalidations (hybrid mode).
    pub spm_invalidations: u64,
    /// Baseline stride-prefetcher coverage (misses whose line was in
    /// flight).
    pub prefetch_hits: u64,
    pub per_core_cycles: Vec<u64>,
}

impl std::fmt::Display for MachineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "cycles       {:>14}", self.cycles)?;
        writeln!(f, "energy (nJ)  {:>14.1}", self.energy.total())?;
        writeln!(f, "NoC flits    {:>14}", self.noc_flits)?;
        writeln!(
            f,
            "L1           {:>14} hits / {} misses",
            self.l1_hits, self.l1_misses
        )?;
        writeln!(
            f,
            "SPM          {:>14} hits / {} fills ({} remote)",
            self.spm_hits, self.spm_fills, self.remote_spm_refs
        )?;
        writeln!(f, "DRAM         {:>14} accesses", self.dram_accesses)?;
        writeln!(
            f,
            "utilisation  {:>14.1}% (min core {:.1}%, max core {:.1}%)",
            100.0 * self.utilization(),
            100.0 * self.core_utilizations().fold(f64::INFINITY, f64::min),
            100.0 * self.core_utilizations().fold(0.0f64, f64::max),
        )
    }
}

impl MachineReport {
    /// Mean busy fraction across cores.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.per_core_cycles.is_empty() {
            return 0.0;
        }
        self.per_core_cycles
            .iter()
            .map(|&c| c as f64 / self.cycles as f64)
            .sum::<f64>()
            / self.per_core_cycles.len() as f64
    }

    /// Per-core busy fractions.
    pub fn core_utilizations(&self) -> impl Iterator<Item = f64> + '_ {
        let total = self.cycles.max(1) as f64;
        self.per_core_cycles.iter().map(move |&c| c as f64 / total)
    }

    /// Execution-time speedup of `self` over `base` (higher = faster).
    pub fn time_speedup_over(&self, base: &MachineReport) -> f64 {
        base.cycles as f64 / self.cycles as f64
    }

    /// Energy "speedup" (reduction factor) over `base`.
    pub fn energy_speedup_over(&self, base: &MachineReport) -> f64 {
        base.energy.total() / self.energy.total()
    }

    /// NoC traffic reduction factor over `base`.
    pub fn traffic_speedup_over(&self, base: &MachineReport) -> f64 {
        base.noc_flits as f64 / self.noc_flits as f64
    }
}

/// The simulated machine. See the module docs.
pub struct Machine {
    cfg: MachineConfig,
    em: EnergyModel,
    l1: Vec<Cache>,
    spm: Vec<SpmState>,
    l2: Cache,
    dir: Directory,
    sdir: SpmDirectory,
    mesh: Mesh,
    dram: Dram,
    energy: EnergyBreakdown,
    /// Lines from SPM-mapped ranges that currently sit in some L1 via the
    /// unknown-alias cache path (must be purged when a DMA fill claims
    /// their line).
    cached_mapped_lines: HashSet<u64>,
    /// Stride-prefetcher state: a small per-core stream table.
    pref_streams: Vec<Vec<StreamEntry>>,
    /// DMA fill / writeback counters per core, for setup amortisation
    /// over the tile quantum.
    dma_fills: Vec<u64>,
    dma_wbs: Vec<u64>,
    /// Per-L2-bank busy-until timestamps (bank-contention model).
    bank_busy_until: Vec<u64>,
    /// Total cycles lost to bank queueing.
    pub bank_stall: u64,
    /// Global time of the reference currently being served (set by
    /// `run_streams` before each `mem_access`).
    now: u64,
    /// Which cores' SPMs hold each line (single-writer coherence for
    /// the software cache: a strided store invalidates other holders).
    spm_holders: HashMap<u64, u128>,
    pub spm_invalidations: u64,
    pub prefetch_hits: u64,
    mem_refs: u64,
    remote_spm_refs: u64,
}

impl Machine {
    /// Build a machine; `spm_ranges` are the compiler's SPM-mapped
    /// address ranges (ignored in cache-only mode).
    pub fn new(cfg: MachineConfig, spm_ranges: Vec<(u64, u64)>) -> Self {
        let ranges = match cfg.mode {
            HierarchyMode::CacheOnly => Vec::new(),
            HierarchyMode::Hybrid => spm_ranges,
        };
        let cfg_cores = cfg.cores;
        let l1 = (0..cfg.cores)
            .map(|_| Cache::new(cfg.l1_lines(), cfg.l1_ways))
            .collect();
        let spm = (0..cfg.cores)
            .map(|_| SpmState::new(cfg.spm_bytes, cfg.line_bytes))
            .collect();
        let l2 = Cache::new(cfg.l2_lines(), cfg.l2_ways);
        let mesh = Mesh::new(cfg.mesh_width(), cfg.noc_hop_lat);
        let dram = Dram::new(8, cfg.dram_lat);
        let sdir = SpmDirectory::new(ranges, cfg.line_bytes);
        Machine {
            cfg,
            em: EnergyModel::default(),
            l1,
            spm,
            l2,
            dir: Directory::new(),
            sdir,
            mesh,
            dram,
            energy: EnergyBreakdown::default(),
            cached_mapped_lines: HashSet::new(),
            pref_streams: vec![Vec::new(); cfg_cores],
            dma_fills: vec![0; cfg_cores],
            dma_wbs: vec![0; cfg_cores],
            bank_busy_until: vec![0; cfg_cores],
            bank_stall: 0,
            now: 0,
            spm_holders: HashMap::new(),
            spm_invalidations: 0,
            prefetch_hits: 0,
            mem_refs: 0,
            remote_spm_refs: 0,
        }
    }

    /// Override the energy model.
    pub fn with_energy_model(mut self, em: EnergyModel) -> Self {
        self.em = em;
        self
    }

    /// Home L2 bank (tile index) of a line: low-order interleaving.
    fn home(&self, line: u64) -> usize {
        (line as usize) % self.cfg.cores
    }

    /// Bank-queueing delay for an access to bank `bank` at the current
    /// global time (no-op unless `l2_bank_contention` is on).
    fn bank_wait(&mut self, bank: usize) -> u64 {
        if !self.cfg.l2_bank_contention {
            return 0;
        }
        let free_at = self.bank_busy_until[bank];
        let start = free_at.max(self.now);
        self.bank_busy_until[bank] = start + self.cfg.l2_service_lat;
        let wait = start - self.now;
        self.bank_stall += wait;
        wait
    }

    /// Stride-prediction-table prefetcher (16 streams per core, LRU):
    /// a miss continuing a detected constant-stride stream counts as
    /// covered (the line was in flight).
    fn prefetcher_covers(&mut self, core: usize, line: u64) -> bool {
        if !self.cfg.prefetcher {
            return false;
        }
        const TABLE: usize = 16;
        /// A stream match window: a miss within this many lines of a
        /// tracked stream trains it.
        const WINDOW: i64 = 256;
        let table = &mut self.pref_streams[core];
        // 1) continuation of a trained stream?
        for i in 0..table.len() {
            let e = table[i];
            if e.delta != 0 && line as i64 == e.last as i64 + e.delta {
                table[i].last = line;
                let e = table.remove(i);
                table.push(e); // LRU to back
                self.prefetch_hits += 1;
                return true;
            }
        }
        // 2) train the nearest stream within the window.
        let mut best: Option<(usize, i64)> = None;
        for (i, e) in table.iter().enumerate() {
            let d = line as i64 - e.last as i64;
            if d != 0
                && d.abs() <= WINDOW
                && (best.is_none() || d.abs() < best.expect("set").1.abs())
            {
                best = Some((i, d));
            }
        }
        if let Some((i, d)) = best {
            table[i].last = line;
            table[i].delta = d;
            let e = table.remove(i);
            table.push(e);
            return false;
        }
        // 3) allocate a fresh stream.
        if table.len() >= TABLE {
            table.remove(0);
        }
        table.push(StreamEntry {
            last: line,
            delta: 0,
        });
        false
    }

    /// Run a kernel: one trace per core, interleaved in global time
    /// order.
    pub fn run_kernel(&mut self, kernel: &dyn Kernel) -> MachineReport {
        assert_eq!(
            kernel.cores(),
            self.cfg.cores,
            "kernel partitioning must match the machine"
        );
        let streams: Vec<_> = (0..kernel.cores()).map(|c| kernel.core_trace(c)).collect();
        self.run_streams(streams)
    }

    /// Run explicit per-core streams (synthetic workloads, tests).
    pub fn run_streams<'a>(
        &mut self,
        mut streams: Vec<Box<dyn Iterator<Item = TraceEvent> + Send + 'a>>,
    ) -> MachineReport {
        assert!(
            streams.len() <= self.cfg.cores,
            "more streams than cores ({} > {})",
            streams.len(),
            self.cfg.cores
        );
        let n = streams.len();
        let mut times = vec![0u64; n];
        // Barrier bookkeeping: cores that reached the current barrier
        // wait until every live core arrives, then all resume at the
        // latest arrival time (BSP semantics).
        let mut at_barrier: Vec<bool> = vec![false; n];
        let mut live = n;
        let mut waiting = 0usize;
        // Min-heap on (time, core): approximate global ordering.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..n).map(|c| Reverse((0u64, c))).collect();
        loop {
            // Release a completed barrier episode.
            if live > 0 && waiting == live {
                let release = times
                    .iter()
                    .zip(&at_barrier)
                    .filter(|&(_, &w)| w)
                    .map(|(&t, _)| t)
                    .max()
                    .unwrap_or(0);
                for c in 0..n {
                    if at_barrier[c] {
                        at_barrier[c] = false;
                        times[c] = release;
                        heap.push(Reverse((release, c)));
                    }
                }
                waiting = 0;
            }
            let Some(Reverse((t, c))) = heap.pop() else {
                break;
            };
            match streams[c].next() {
                None => {
                    // Stream drained: stop participating in barriers.
                    live -= 1;
                }
                Some(TraceEvent::Barrier) => {
                    at_barrier[c] = true;
                    waiting += 1;
                }
                Some(TraceEvent::Compute(cy)) => {
                    times[c] = t + cy as u64;
                    heap.push(Reverse((times[c], c)));
                }
                Some(TraceEvent::Mem(m)) => {
                    self.now = t;
                    let lat = self.mem_access(c, &m);
                    times[c] = t + lat.max(1);
                    heap.push(Reverse((times[c], c)));
                }
            }
        }
        self.report(&times)
    }

    /// Route one memory reference; returns its latency in cycles.
    pub fn mem_access(&mut self, core: usize, m: &MemRef) -> u64 {
        self.mem_refs += 1;
        match (self.cfg.mode, m.class) {
            (HierarchyMode::CacheOnly, _) => self.cache_path(core, m.line(), m.is_store),
            (HierarchyMode::Hybrid, RefClass::Strided) => {
                if self.sdir.in_mapped_range(m.addr) {
                    self.spm_path(core, m.addr, m.is_store)
                } else {
                    self.cache_path(core, m.line(), m.is_store)
                }
            }
            (HierarchyMode::Hybrid, RefClass::RandomNoAlias) => {
                self.cache_path(core, m.line(), m.is_store)
            }
            (HierarchyMode::Hybrid, RefClass::RandomUnknown) => {
                self.unknown_path(core, m.addr, m.is_store)
            }
        }
    }

    /// Conventional L1 → directory/L2 → DRAM path.
    fn cache_path(&mut self, core: usize, line: u64, store: bool) -> u64 {
        self.energy.l1 += self.em.l1_access;
        // Hit path. A store to a clean Shared line needs the S→M upgrade
        // round trip; an Exclusive line upgrades silently (MESI's point).
        if let Some((was_dirty, excl)) = self.l1[core].probe_state(line) {
            self.l1[core].access(line, store);
            let mut lat = self.cfg.l1_hit_lat;
            if store && !was_dirty {
                if excl {
                    // Silent E→M: inform the directory bookkeeping only.
                    self.dir.write(line, core as u16);
                } else {
                    let home = self.home(line);
                    lat +=
                        self.mesh
                            .round_trip(core, home, self.cfg.ctrl_flits, self.cfg.ctrl_flits);
                    self.energy.directory += self.em.dir_lookup;
                    let acts = self.dir.write(line, core as u16);
                    for c in acts.invalidate {
                        self.mesh.send(home, c as usize, self.cfg.ctrl_flits);
                        self.mesh.send(c as usize, home, self.cfg.ctrl_flits);
                        self.l1[c as usize].invalidate(line);
                    }
                }
                // fetch_owner cannot occur: we held a copy.
            }
            return lat;
        }

        // Miss: request to the home bank's directory. If the stride
        // prefetcher already has the line in flight, the core observes
        // only a short fill delay — but all directory/L2/DRAM work and
        // traffic below still happens (the prefetch performed it).
        let home = self.home(line);
        let prefetched = self.prefetcher_covers(core, line);
        let trip = self
            .mesh
            .round_trip(core, home, self.cfg.ctrl_flits, self.cfg.data_flits);
        let mut lat = self.cfg.l1_hit_lat
            + if prefetched {
                self.cfg.prefetch_hit_lat
            } else {
                trip
            };
        self.energy.directory += self.em.dir_lookup;
        if store {
            let acts = self.dir.write(line, core as u16);
            for c in &acts.invalidate {
                self.mesh.send(home, *c as usize, self.cfg.ctrl_flits);
                self.mesh.send(*c as usize, home, self.cfg.ctrl_flits);
                self.l1[*c as usize].invalidate(line);
            }
            if let Some(o) = acts.fetch_owner {
                lat += self.mesh.round_trip(
                    home,
                    o as usize,
                    self.cfg.ctrl_flits,
                    self.cfg.data_flits,
                );
                self.l1[o as usize].invalidate(line);
                // The dirty data merges at the L2 on its way over.
                self.touch_l2(line, true);
            }
        } else {
            let acts = self.dir.read(line, core as u16);
            if let Some(o) = acts.downgrade_owner {
                lat += self.mesh.round_trip(
                    home,
                    o as usize,
                    self.cfg.ctrl_flits,
                    self.cfg.data_flits,
                );
                self.l1[o as usize].clean(line);
                self.touch_l2(line, true);
            }
            // An E→S transition on a remote holder costs nothing here but
            // must clear the holder's silent-upgrade permission.
            if let crate::coherence::LineState::Shared(mask) = self.dir.state(line) {
                for o in 0..self.cfg.cores as u16 {
                    if o != core as u16 && mask & (1u128 << o) != 0 {
                        self.l1[o as usize].clean(line);
                    }
                }
            }
        }

        // L2 lookup at the home bank (optionally queued).
        let bank_wait = self.bank_wait(home);
        lat += bank_wait;
        self.energy.l2 += self.em.l2_access;
        match self.l2.access(line, false) {
            AccessResult::Hit => {
                if !prefetched {
                    lat += self.cfg.l2_hit_lat;
                }
            }
            AccessResult::Miss { evicted } => {
                let corner = self.mesh.nearest_corner(home);
                let dram_lat = self.dram.access(line);
                if !prefetched {
                    lat += self.cfg.l2_hit_lat
                        + self.mesh.round_trip(
                            home,
                            corner,
                            self.cfg.ctrl_flits,
                            self.cfg.data_flits,
                        )
                        + dram_lat;
                } else {
                    // Traffic still flows for the prefetched line.
                    self.mesh
                        .round_trip(home, corner, self.cfg.ctrl_flits, self.cfg.data_flits);
                }
                self.energy.dram += self.em.dram_access;
                if let Some(v) = evicted {
                    if v.dirty {
                        // L2 victim writeback to DRAM.
                        self.mesh.send(home, corner, self.cfg.data_flits);
                        self.dram.access(v.line);
                        self.energy.dram += self.em.dram_access;
                    }
                }
            }
        }

        // L1 fill (+ victim writeback).
        if let AccessResult::Miss {
            evicted: Some(v), ..
        } = self.l1[core].access(line, store)
        {
            self.dir.evict(v.line, core as u16);
            self.cached_mapped_lines.remove(&v.line);
            if v.dirty {
                let vh = self.home(v.line);
                self.mesh.send(core, vh, self.cfg.data_flits);
                self.touch_l2(v.line, true);
            }
        }
        // Exclusive grant: a read whose directory response says we are
        // the sole holder fills in E, enabling the silent upgrade later.
        if !store {
            if let crate::coherence::LineState::Exclusive(holder) = self.dir.state(line) {
                if holder == core as u16 {
                    self.l1[core].set_exclusive(line);
                }
            }
        }
        lat
    }

    /// Write-allocate a line into the L2 (writeback sink), spilling dirty
    /// victims to DRAM.
    fn touch_l2(&mut self, line: u64, dirty: bool) {
        self.energy.l2 += self.em.l2_access;
        if let AccessResult::Miss {
            evicted: Some(v), ..
        } = self.l2.access(line, dirty)
        {
            if v.dirty {
                let home = self.home(v.line);
                let corner = self.mesh.nearest_corner(home);
                self.mesh.send(home, corner, self.cfg.data_flits);
                self.dram.access(v.line);
                self.energy.dram += self.em.dram_access;
            }
        }
    }

    /// Strided reference through the local SPM (packed-DMA software
    /// cache, line-granular residency).
    fn spm_path(&mut self, core: usize, addr: u64, store: bool) -> u64 {
        self.energy.spm += self.em.spm_access;
        let line = addr >> 6;
        if store {
            self.spm_store_invalidate(core, line);
        }
        match self.spm[core].access(addr, store) {
            SpmAccess::Hit => self.cfg.spm_lat,
            SpmAccess::Fill { evicted } => {
                if let Some((vline, dirty)) = evicted {
                    self.sdir.clear_resident(vline << 6, core as u16);
                    self.drop_holder(vline, core);
                    if dirty {
                        self.dma_writeback_line(core, vline);
                    }
                }
                self.dma_fill_line(core, line);
                self.sdir.set_resident(addr, core as u16);
                *self.spm_holders.entry(line).or_insert(0) |= 1u128 << core;
                // Double-buffered streaming DMA: the core observes the
                // pipelined per-line cost, plus the programming cost once
                // per tile quantum.
                self.dma_fills[core] += 1;
                let setup = if self.dma_fills[core] % self.cfg.tile_lines() == 1 {
                    self.cfg.dma_setup_lat
                } else {
                    0
                };
                self.cfg.spm_lat + self.cfg.dma_per_line_lat + setup
            }
        }
    }

    fn drop_holder(&mut self, line: u64, core: usize) {
        if let Some(mask) = self.spm_holders.get_mut(&line) {
            *mask &= !(1u128 << core);
            if *mask == 0 {
                self.spm_holders.remove(&line);
            }
        }
    }

    /// Single-writer discipline for SPM-mapped data: a store invalidates
    /// every other SPM's copy of the line (invalidation messages are
    /// charged; the stale copies are dropped without writeback).
    fn spm_store_invalidate(&mut self, core: usize, line: u64) {
        let Some(&mask) = self.spm_holders.get(&line) else {
            return;
        };
        let others = mask & !(1u128 << core);
        if others == 0 {
            return;
        }
        for o in 0..self.cfg.cores {
            if others & (1u128 << o) != 0 {
                self.spm[o].invalidate(line);
                self.sdir.clear_resident(line << 6, o as u16);
                self.mesh.send(core, o, self.cfg.ctrl_flits);
                self.spm_invalidations += 1;
            }
        }
        self.spm_holders.insert(line, 1u128 << core);
    }

    /// DMA-stream one line from the memory system into `core`'s SPM.
    /// Header/ programming traffic is amortised over the tile quantum.
    fn dma_fill_line(&mut self, core: usize, line: u64) {
        let home = self.home(line);
        if self.dma_fills[core].is_multiple_of(self.cfg.tile_lines()) {
            // New DMA program: request message + energy.
            self.energy.dma += self.em.dma_setup;
            self.mesh.send(core, home, self.cfg.ctrl_flits);
        }
        // Payload without per-line headers (bulk stream).
        self.mesh.send(home, core, self.cfg.data_flits - 1);
        // Invalidate stale cached copies (unknown-alias leftovers).
        if self.cached_mapped_lines.remove(&line) {
            for holder in self.dir.purge(line) {
                self.mesh.send(home, holder as usize, self.cfg.ctrl_flits);
                if let Some(true) = self.l1[holder as usize].invalidate(line) {
                    self.mesh.send(holder as usize, home, self.cfg.data_flits);
                    self.touch_l2(line, true);
                }
            }
        }
        self.energy.l2 += self.em.l2_access;
        if let AccessResult::Miss { evicted } = self.l2.access(line, false) {
            let corner = self.mesh.nearest_corner(home);
            self.dram.access(line);
            self.energy.dram += self.em.dram_access;
            self.mesh.send(corner, home, self.cfg.data_flits);
            if let Some(v) = evicted {
                if v.dirty {
                    self.mesh.send(home, corner, self.cfg.data_flits);
                    self.dram.access(v.line);
                    self.energy.dram += self.em.dram_access;
                }
            }
        }
    }

    /// DMA-stream a dirty line back from `core`'s SPM.
    fn dma_writeback_line(&mut self, core: usize, line: u64) {
        let home = self.home(line);
        self.dma_wbs[core] += 1;
        if self.dma_wbs[core] % self.cfg.tile_lines() == 1 {
            self.energy.dma += self.em.dma_setup;
            self.mesh.send(core, home, self.cfg.ctrl_flits);
        }
        self.mesh.send(core, home, self.cfg.data_flits - 1);
        self.touch_l2(line, true);
    }

    /// Unknown-alias reference: filter, then SDIR, then the memory that
    /// holds the valid copy.
    fn unknown_path(&mut self, core: usize, addr: u64, store: bool) -> u64 {
        self.energy.filter += self.em.filter_lookup;
        // The filter is consulted in parallel with the L1 tag lookup, so
        // misses to the cache side pay no extra latency; SPM-side hits
        // pay one cycle of redirection.
        let mut lat = 1;
        if !self.sdir.filter_check(addr) {
            // Cannot alias SPM data: plain cache path (filter hidden).
            return self.cache_path(core, addr >> 6, store);
        }
        match self.sdir.lookup_owner(addr) {
            Some(o) if o as usize == core => {
                if self.spm[core].touch_remote(addr, store) {
                    self.energy.spm += self.em.spm_access;
                    lat + self.cfg.spm_lat
                } else {
                    // Stale SDIR entry: repair and fall back.
                    self.sdir.clear_resident(addr, o);
                    lat += self.cache_path(core, addr >> 6, store);
                    self.cached_mapped_lines.insert(addr >> 6);
                    lat
                }
            }
            Some(o) => {
                // Valid copy lives in a remote SPM: word-granularity NoC
                // round trip.
                if self.spm[o as usize].touch_remote(addr, store) {
                    self.remote_spm_refs += 1;
                    self.energy.spm += self.em.spm_access;
                    lat += self
                        .mesh
                        .round_trip(core, o as usize, self.cfg.ctrl_flits, 2)
                        + self.cfg.spm_lat;
                    lat
                } else {
                    self.sdir.clear_resident(addr, o);
                    lat += self.cache_path(core, addr >> 6, store);
                    self.cached_mapped_lines.insert(addr >> 6);
                    lat
                }
            }
            None => {
                // Not SPM-resident right now: the caches hold the valid
                // copy (filter lookup hidden under the cache access);
                // remember the line for invalidation-on-DMA.
                let l = self.cache_path(core, addr >> 6, store);
                self.cached_mapped_lines.insert(addr >> 6);
                l
            }
        }
    }

    fn report(&self, times: &[u64]) -> MachineReport {
        let cycles = times.iter().copied().max().unwrap_or(0);
        let mut energy = self.energy;
        energy.noc = self.em.noc_flit_hop * self.mesh.flit_hops as f64;
        energy.leakage = self.em.leak_core_cycle * cycles as f64 * self.cfg.cores as f64;
        MachineReport {
            cycles,
            energy,
            noc_flits: self.mesh.flits,
            noc_flit_hops: self.mesh.flit_hops,
            mem_refs: self.mem_refs,
            l1_hits: self.l1.iter().map(|c| c.hits).sum(),
            l1_misses: self.l1.iter().map(|c| c.misses).sum(),
            l2_hits: self.l2.hits,
            l2_misses: self.l2.misses,
            spm_hits: self.spm.iter().map(|s| s.hits).sum(),
            spm_fills: self.spm.iter().map(|s| s.fills).sum(),
            remote_spm_refs: self.remote_spm_refs,
            dram_accesses: self.dram.accesses,
            invalidations: self.dir.invalidations,
            spm_invalidations: self.spm_invalidations,
            prefetch_hits: self.prefetch_hits,
            per_core_cycles: times.to_vec(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Reset all state and statistics (reuse across runs; cheaper than
    /// reconstructing for repeated sweeps).
    pub fn reset(&mut self) {
        let cfg = self.cfg.clone();
        let ranges = std::mem::take(&mut self.sdir);
        let ranges = ranges.into_ranges();
        *self = Machine::new(cfg, ranges).with_energy_model(self.em);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_workloads::synthetic;
    use raa_workloads::{KernelCfg, Scale};

    fn machine(cores: usize, mode: HierarchyMode, ranges: Vec<(u64, u64)>) -> Machine {
        Machine::new(MachineConfig::tiled(cores, mode), ranges)
    }

    #[test]
    fn strided_stream_cache_only_misses_once_per_line() {
        let mut m = machine(1, HierarchyMode::CacheOnly, vec![]);
        let stream = synthetic::strided_sweep(4096, 800, 0); // 100 lines
        let r = m.run_streams(vec![Box::new(stream)]);
        assert_eq!(r.mem_refs, 800);
        assert_eq!(r.l1_misses, 100, "one compulsory miss per 64B line");
        assert_eq!(r.l1_hits, 700);
        assert!(r.cycles > 800);
    }

    #[test]
    fn hybrid_serves_mapped_strided_from_spm() {
        let mut m = machine(1, HierarchyMode::Hybrid, vec![(4096, 4096 + 6400)]);
        let stream = synthetic::strided_sweep(4096, 800, 0);
        let r = m.run_streams(vec![Box::new(stream)]);
        assert_eq!(r.spm_hits + r.spm_fills, 800);
        assert_eq!(r.l1_hits + r.l1_misses, 0, "no cache traffic at all");
        // 800 × 8B = 6400 B = 100 lines: one streamed fill per line.
        assert_eq!(r.spm_fills, 100);
    }

    #[test]
    fn hybrid_beats_cache_only_on_strided_streams() {
        let run = |mode| {
            let mut m = machine(4, mode, vec![(4096, 4096 + (1 << 22))]);
            let streams: Vec<Box<dyn Iterator<Item = TraceEvent> + Send>> = (0..4)
                .map(|c| Box::new(synthetic::strided_sweep(4096 + c * 1024 * 512, 20_000, 4)) as _)
                .collect();
            m.run_streams(streams)
        };
        let cache = run(HierarchyMode::CacheOnly);
        let hybrid = run(HierarchyMode::Hybrid);
        // On purely private strided data a MESI-E + prefetcher baseline
        // is latency-competitive; the hybrid hierarchy's wins there are
        // energy and traffic (the Fig. 1 gains come from shared/streamed
        // working sets, not this microbenchmark).
        assert!(
            (hybrid.cycles as f64) < cache.cycles as f64 * 1.10,
            "hybrid must stay within 10% on private streams: {} vs {}",
            hybrid.cycles,
            cache.cycles
        );
        assert!(hybrid.energy.total() < cache.energy.total());
        assert!(hybrid.noc_flits < cache.noc_flits);
    }

    #[test]
    fn unmapped_strided_refs_use_the_cache_even_in_hybrid() {
        let mut m = machine(1, HierarchyMode::Hybrid, vec![]);
        let stream = synthetic::strided_sweep(4096, 100, 0);
        let r = m.run_streams(vec![Box::new(stream)]);
        assert_eq!(r.spm_hits + r.spm_fills, 0);
        assert!(r.l1_hits > 0);
    }

    #[test]
    fn unknown_refs_follow_the_valid_copy() {
        // Map a range, DMA a tile in via a strided access, then hit the
        // same tile with an unknown-alias access: it must be served by
        // the SPM, not the cache.
        let mut m = machine(1, HierarchyMode::Hybrid, vec![(4096, 8192)]);
        use raa_workloads::trace::{MemRef, TraceEvent};
        let events = vec![
            TraceEvent::Mem(MemRef::load(4096, 8, RefClass::Strided)),
            TraceEvent::Mem(MemRef::load(4100, 4, RefClass::RandomUnknown)),
            // Outside the mapped range: cache path.
            TraceEvent::Mem(MemRef::load(16384, 8, RefClass::RandomUnknown)),
        ];
        let r = m.run_streams(vec![Box::new(events.into_iter())]);
        assert_eq!(r.spm_fills, 1);
        assert_eq!(r.spm_hits, 1, "unknown ref served by the SPM");
        assert_eq!(r.l1_misses, 1, "only the unmapped ref used the cache");
    }

    #[test]
    fn coherence_read_write_sharing_generates_invalidations() {
        use raa_workloads::trace::{MemRef, TraceEvent};
        // Core 0 and 1 read the same line, then core 1 writes it.
        let mk = |evs: Vec<TraceEvent>| Box::new(evs.into_iter()) as _;
        let mut m = machine(4, HierarchyMode::CacheOnly, vec![]);
        let shared = 65536u64;
        let r = m.run_streams(vec![
            mk(vec![TraceEvent::Mem(MemRef::load(
                shared,
                8,
                RefClass::Strided,
            ))]),
            mk(vec![
                TraceEvent::Compute(1000), // let core 0 read first
                TraceEvent::Mem(MemRef::load(shared, 8, RefClass::Strided)),
                TraceEvent::Mem(MemRef::store(shared, 8, RefClass::Strided)),
            ]),
        ]);
        assert!(r.invalidations >= 1, "store must invalidate the sharer");
    }

    #[test]
    fn ep_like_traces_are_mode_insensitive() {
        // EP's tiny footprint must yield ~1.0 speedups (the paper's
        // "no degradation" claim).
        let kcfg = KernelCfg::new(4, Scale::Small);
        let run = |mode| {
            let k = raa_workloads::kernels::ep::Ep::new(kcfg);
            let mut m = machine(4, mode, k.space().spm_ranges());
            m.run_kernel(&k)
        };
        let cache = run(HierarchyMode::CacheOnly);
        let hybrid = run(HierarchyMode::Hybrid);
        let speedup = hybrid.time_speedup_over(&cache);
        assert!(
            (speedup - 1.0).abs() < 0.05,
            "EP speedup should be ~1.0, got {speedup}"
        );
    }

    #[test]
    fn all_nas_kernels_run_on_the_paper_machine_scaled_down() {
        let kcfg = KernelCfg::new(4, Scale::Test);
        for k in raa_workloads::all_kernels(kcfg) {
            for mode in [HierarchyMode::CacheOnly, HierarchyMode::Hybrid] {
                let mut m = machine(4, mode, k.space().spm_ranges());
                let r = m.run_kernel(k.as_ref());
                assert!(r.cycles > 0, "{} produced no cycles", k.name());
                assert!(r.energy.total() > 0.0);
                // Conservation: every reference is served by the L1 path
                // or the SPM path (remote SPM refs count as SPM hits).
                assert_eq!(
                    r.l1_hits + r.l1_misses + r.spm_hits + r.spm_fills,
                    r.mem_refs,
                    "{} lost references in {:?}",
                    k.name(),
                    mode
                );
            }
        }
    }

    #[test]
    fn disabling_the_prefetcher_slows_the_baseline() {
        let stream = || -> Vec<Box<dyn Iterator<Item = TraceEvent> + Send>> {
            vec![Box::new(synthetic::strided_sweep(4096, 20_000, 0)) as _]
        };
        let mut on = machine(1, HierarchyMode::CacheOnly, vec![]);
        let with = on.run_streams(stream());
        let mut cfg = MachineConfig::tiled(1, HierarchyMode::CacheOnly);
        cfg.prefetcher = false;
        let mut off_m = Machine::new(cfg, vec![]);
        let without = off_m.run_streams(stream());
        assert!(with.prefetch_hits > 0);
        assert_eq!(without.prefetch_hits, 0);
        assert!(
            without.cycles > with.cycles,
            "prefetching must pay on streams: {} vs {}",
            without.cycles,
            with.cycles
        );
    }

    #[test]
    fn bank_contention_slows_conflicting_cores() {
        // Four cores hammer lines that all live in bank 0 (line % cores
        // == 0): with contention on, they queue.
        let mk_streams = || -> Vec<Box<dyn Iterator<Item = TraceEvent> + Send>> {
            (0..4)
                .map(|c| {
                    let evs: Vec<TraceEvent> = (0..200u64)
                        .map(|i| {
                            // Distinct lines, same home bank, no reuse.
                            let line = (c as u64 * 1000 + i) * 4;
                            TraceEvent::Mem(MemRef::load(line * 64, 8, RefClass::RandomNoAlias))
                        })
                        .collect();
                    Box::new(evs.into_iter()) as _
                })
                .collect()
        };
        let mut free = machine(4, HierarchyMode::CacheOnly, vec![]);
        let base = free.run_streams(mk_streams());
        let mut cfg = MachineConfig::tiled(4, HierarchyMode::CacheOnly);
        cfg.l2_bank_contention = true;
        cfg.l2_service_lat = 16;
        let mut contended = Machine::new(cfg, vec![]);
        let queued = contended.run_streams(mk_streams());
        assert!(contended.bank_stall > 0, "queueing must be visible");
        assert!(
            queued.cycles > base.cycles,
            "contention must cost time: {} vs {}",
            queued.cycles,
            base.cycles
        );
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut m = machine(2, HierarchyMode::Hybrid, vec![(4096, 1 << 16)]);
        let first = m.run_streams(vec![Box::new(synthetic::strided_sweep(4096, 500, 4)) as _]);
        assert!(first.mem_refs > 0);
        m.reset();
        let second = m.run_streams(vec![Box::new(synthetic::strided_sweep(4096, 500, 4)) as _]);
        assert_eq!(first.cycles, second.cycles, "reset must be complete");
        assert_eq!(first.noc_flits, second.noc_flits);
        assert_eq!(first.spm_fills, second.spm_fills);
    }

    #[test]
    fn report_display_and_utilization() {
        let mut m = machine(2, HierarchyMode::CacheOnly, vec![]);
        let streams: Vec<Box<dyn Iterator<Item = TraceEvent> + Send>> = vec![
            Box::new(synthetic::strided_sweep(4096, 400, 0)) as _,
            Box::new(synthetic::strided_sweep(1 << 20, 100, 0)) as _,
        ];
        let r = m.run_streams(streams);
        let u = r.utilization();
        assert!(u > 0.0 && u <= 1.0);
        // The shorter stream leaves its core underutilised.
        let utils: Vec<f64> = r.core_utilizations().collect();
        assert!(utils[1] < utils[0]);
        let text = format!("{r}");
        assert!(text.contains("cycles"));
        assert!(text.contains("utilisation"));
    }

    #[test]
    fn report_speedup_helpers() {
        let mut a = machine(1, HierarchyMode::CacheOnly, vec![]);
        let ra = a.run_streams(vec![Box::new(synthetic::strided_sweep(4096, 100, 0)) as _]);
        let mut b = machine(1, HierarchyMode::CacheOnly, vec![]);
        let rb = b.run_streams(vec![Box::new(synthetic::strided_sweep(4096, 200, 0)) as _]);
        assert!(rb.time_speedup_over(&ra) < 1.0);
        assert!(ra.time_speedup_over(&rb) > 1.0);
    }
}
