//! Set-associative write-back cache with LRU replacement.
//!
//! The cache tracks line *presence and dirtiness* only — trace-driven
//! simulation needs hit/miss/eviction behaviour, not data contents.

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    Hit,
    /// Miss; the victim (if any) is reported so the caller can generate
    /// writeback traffic for dirty lines.
    Miss {
        evicted: Option<Victim>,
    },
}

/// An evicted line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    pub line: u64,
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    line: u64,
    valid: bool,
    dirty: bool,
    /// Coherence-exclusive (MESI E): a store may upgrade silently.
    excl: bool,
    /// LRU stamp; larger = more recently used.
    lru: u64,
}

const INVALID: Way = Way {
    line: 0,
    valid: false,
    dirty: false,
    excl: false,
    lru: 0,
};

/// A set-associative cache over 64-byte lines.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    data: Vec<Way>,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
}

impl Cache {
    /// A cache with `lines` total lines and `ways` associativity.
    /// `lines` must be a multiple of `ways` and sets a power of two.
    pub fn new(lines: usize, ways: usize) -> Self {
        assert!(ways >= 1 && lines >= ways && lines.is_multiple_of(ways));
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            ways,
            data: vec![INVALID; lines],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        // XOR-folded (skewed) index: breaks pathological power-of-two
        // stride conflicts, as padded layouts / hashed indexing do in
        // real designs.
        let bits = self.sets.trailing_zeros();
        ((line ^ (line >> bits) ^ (line >> (2 * bits))) as usize) & (self.sets - 1)
    }

    fn set_slice(&mut self, set: usize) -> &mut [Way] {
        let lo = set * self.ways;
        &mut self.data[lo..lo + self.ways]
    }

    /// Access `line`; `store` marks the line dirty on hit or fill.
    pub fn access(&mut self, line: u64, store: bool) -> AccessResult {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        let ways = self.set_slice(set);
        // Hit?
        for w in ways.iter_mut() {
            if w.valid && w.line == line {
                w.lru = clock;
                w.dirty |= store;
                self.hits += 1;
                return AccessResult::Hit;
            }
        }
        // Miss: pick invalid way or LRU victim.
        let victim_idx = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("ways >= 1");
        let v = ways[victim_idx];
        let evicted = (v.valid).then_some(Victim {
            line: v.line,
            dirty: v.dirty,
        });
        ways[victim_idx] = Way {
            line,
            valid: true,
            dirty: store,
            excl: false,
            lru: clock,
        };
        if matches!(evicted, Some(e) if e.dirty) {
            self.writebacks += 1;
        }
        self.misses += 1;
        AccessResult::Miss { evicted }
    }

    /// Probe without touching LRU or stats: `Some(dirty)` when present.
    pub fn probe(&self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        let lo = set * self.ways;
        self.data[lo..lo + self.ways]
            .iter()
            .find(|w| w.valid && w.line == line)
            .map(|w| w.dirty)
    }

    /// Probe `(dirty, exclusive)` — the MESI write-permission check.
    pub fn probe_state(&self, line: u64) -> Option<(bool, bool)> {
        let set = self.set_of(line);
        let lo = set * self.ways;
        self.data[lo..lo + self.ways]
            .iter()
            .find(|w| w.valid && w.line == line)
            .map(|w| (w.dirty, w.excl))
    }

    /// Grant MESI-Exclusive to a resident line (set on a fill whose
    /// directory response carried exclusivity).
    pub fn set_exclusive(&mut self, line: u64) {
        let set = self.set_of(line);
        let lo = set * self.ways;
        if let Some(w) = self.data[lo..lo + self.ways]
            .iter_mut()
            .find(|w| w.valid && w.line == line)
        {
            w.excl = true;
        }
    }

    /// Does the cache currently hold `line`?
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let lo = set * self.ways;
        self.data[lo..lo + self.ways]
            .iter()
            .any(|w| w.valid && w.line == line)
    }

    /// Invalidate `line` (coherence). Returns whether it was present and
    /// dirty (needs writeback).
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        let lo = set * self.ways;
        for w in &mut self.data[lo..lo + self.ways] {
            if w.valid && w.line == line {
                let dirty = w.dirty;
                *w = INVALID;
                return Some(dirty);
            }
        }
        None
    }

    /// Downgrade `line` to Shared (M→S or E→S on a remote read): clears
    /// dirtiness and exclusivity. Returns true when it was dirty.
    pub fn clean(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let lo = set * self.ways;
        for w in &mut self.data[lo..lo + self.ways] {
            if w.valid && w.line == line {
                let was_dirty = w.dirty;
                w.dirty = false;
                w.excl = false;
                return was_dirty;
            }
        }
        false
    }

    /// Currently valid lines, in way order — the fault-injection /
    /// patrol-scrub population (what ECC actually protects is whatever
    /// is resident right now).
    pub fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.data.iter().filter(|w| w.valid).map(|w| w.line)
    }

    /// Miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_fill() {
        let mut c = Cache::new(64, 4);
        assert!(matches!(c.access(7, false), AccessResult::Miss { .. }));
        assert_eq!(c.access(7, false), AccessResult::Hit);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set × 2 ways: lines 0 and 16 map to set 0 with 16 sets? Use a
        // direct 2-way single-set cache: lines all map to set 0.
        let mut c = Cache::new(2, 2);
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // 0 more recent than 1
        match c.access(2, false) {
            AccessResult::Miss { evicted: Some(v) } => assert_eq!(v.line, 1),
            r => panic!("expected eviction of line 1, got {r:?}"),
        }
        assert!(c.contains(0) && c.contains(2) && !c.contains(1));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(1, 1);
        c.access(5, true);
        match c.access(9, false) {
            AccessResult::Miss { evicted: Some(v) } => {
                assert_eq!(v.line, 5);
                assert!(v.dirty);
            }
            r => panic!("unexpected {r:?}"),
        }
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = Cache::new(1, 1);
        c.access(5, false);
        c.access(5, true);
        match c.access(6, false) {
            AccessResult::Miss { evicted: Some(v) } => assert!(v.dirty),
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = Cache::new(4, 2);
        c.access(3, true);
        assert_eq!(c.invalidate(3), Some(true));
        assert!(!c.contains(3));
        assert_eq!(c.invalidate(3), None);
    }

    #[test]
    fn exclusive_grant_and_silent_upgrade_state() {
        let mut c = Cache::new(4, 2);
        c.access(9, false);
        assert_eq!(c.probe_state(9), Some((false, false)));
        c.set_exclusive(9);
        assert_eq!(c.probe_state(9), Some((false, true)));
        // A store keeps exclusivity and sets dirty.
        c.access(9, true);
        assert_eq!(c.probe_state(9), Some((true, true)));
        // A downgrade clears both.
        c.clean(9);
        assert_eq!(c.probe_state(9), Some((false, false)));
        assert_eq!(c.probe_state(77), None);
    }

    #[test]
    fn clean_downgrades_dirty() {
        let mut c = Cache::new(4, 2);
        c.access(3, true);
        assert!(c.clean(3));
        assert!(!c.clean(3), "already clean");
        // Clean eviction: no writeback.
        let before = c.writebacks;
        c.invalidate(3);
        assert_eq!(c.writebacks, before);
    }

    #[test]
    fn consecutive_lines_map_to_distinct_sets() {
        let mut c = Cache::new(8, 1); // 8 direct-mapped sets
        for l in 0..8u64 {
            c.access(l, false);
        }
        // XOR folding keeps consecutive lines conflict-free.
        for l in 0..8u64 {
            assert!(c.contains(l), "line {l} evicted by a different set");
        }
    }

    #[test]
    fn power_of_two_strides_do_not_thrash() {
        // 128 sets × 4 ways; 32-set strides would classically alias into
        // 4 sets. The hashed index must spread them.
        let mut c = Cache::new(512, 4);
        for rep in 0..2 {
            for i in 0..64u64 {
                c.access(i * 32, false);
            }
            if rep == 1 {
                continue;
            }
        }
        // Second sweep should be mostly hits.
        assert!(
            c.hits >= 48,
            "hashed indexing should retain most of the 64-line stream, hits={}",
            c.hits
        );
    }

    #[test]
    fn resident_lines_tracks_fills_and_invalidations() {
        let mut c = Cache::new(8, 2);
        for l in [3u64, 9, 17] {
            c.access(l, false);
        }
        let mut lines: Vec<u64> = c.resident_lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![3, 9, 17]);
        c.invalidate(9);
        assert_eq!(c.resident_lines().count(), 2);
    }

    #[test]
    fn streaming_miss_ratio_matches_line_reuse() {
        // 8 consecutive 8-byte refs share a line; here we access lines
        // directly so a pure stream misses every time.
        let mut c = Cache::new(64, 4);
        for l in 0..1000u64 {
            c.access(l, false);
        }
        assert!((c.miss_ratio() - 1.0).abs() < 1e-12);
    }
}
