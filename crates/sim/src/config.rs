//! Machine configuration.

/// Which memory hierarchy the machine simulates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HierarchyMode {
    /// Conventional baseline: private L1s + shared L2 + DRAM, directory
    /// coherence. All references go through the caches.
    CacheOnly,
    /// The paper's hybrid hierarchy: per-tile SPMs alongside the L1s.
    /// Strided references are tiled into the SPMs by DMA, random
    /// references use the caches, unknown-alias references consult the
    /// SPM directory + filter.
    Hybrid,
}

/// Geometry, latency and sizing of the simulated machine. Defaults model
/// the paper's 64-core tiled CMP.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of tiles (1 core + L1 + SPM per tile). Must be a square
    /// number for the mesh (8×8 by default).
    pub cores: usize,
    pub mode: HierarchyMode,

    // --- L1 (per tile) ---
    /// L1 capacity in bytes (32 KiB).
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency (cycles).
    pub l1_hit_lat: u64,
    /// Enable the baseline's stride-prediction-table prefetcher
    /// (default on; turn off for sensitivity studies — without it the
    /// baseline is a strawman and the hybrid hierarchy's advantage is
    /// overstated).
    pub prefetcher: bool,
    /// Latency of an L1 miss whose line the stride prefetcher already
    /// has in flight.
    pub prefetch_hit_lat: u64,

    // --- SPM (per tile, hybrid mode) ---
    /// Scratchpad capacity in bytes (64 KiB).
    pub spm_bytes: usize,
    /// SPM access latency (cycles). The physical array is faster than a
    /// tagged cache, but pipelined cores hide hit latency either way, so
    /// the model keeps it equal to the L1 — the hybrid hierarchy's wins
    /// must come from miss handling, energy and traffic, not a free
    /// per-access cycle.
    pub spm_lat: u64,
    /// DMA transfer quantum in bytes: setup costs are amortised over
    /// this many bytes of streamed lines.
    pub dma_tile_bytes: u64,
    /// Fixed DMA programming/setup latency (cycles), charged once per
    /// tile quantum; the bulk transfer itself is pipelined.
    pub dma_setup_lat: u64,
    /// Per-line pipelined DMA stream cost (cycles) the core observes on
    /// an SPM fill (double buffering hides the full memory latency).
    pub dma_per_line_lat: u64,

    // --- shared L2 (banked, one bank per tile) ---
    /// Total L2 capacity in bytes (16 MiB).
    pub l2_bytes: usize,
    pub l2_ways: usize,
    /// L2 bank access latency (cycles), excluding NoC.
    pub l2_hit_lat: u64,
    /// Model L2 bank queueing: concurrent accesses to the same bank
    /// serialise at `l2_service_lat` per request. Off by default (the
    /// Fig. 1 calibration excludes queueing; turn on for contention
    /// sensitivity studies).
    pub l2_bank_contention: bool,
    /// Bank occupancy per request when contention modelling is on.
    pub l2_service_lat: u64,

    // --- NoC ---
    /// Per-hop latency (cycles).
    pub noc_hop_lat: u64,
    /// Flits per data (cache line) message, header included.
    pub data_flits: u64,
    /// Flits per control message.
    pub ctrl_flits: u64,

    // --- DRAM ---
    /// DRAM access latency (cycles), excluding NoC.
    pub dram_lat: u64,

    /// Line size in bytes (fixed 64 in address math; kept for reports).
    pub line_bytes: u64,
}

impl MachineConfig {
    /// The paper's 64-core machine.
    pub fn paper_64core(mode: HierarchyMode) -> Self {
        Self::tiled(64, mode)
    }

    /// A tiled machine with `cores` tiles (any square count).
    ///
    /// The comparison is iso-capacity: the hybrid tile spends its SRAM
    /// budget as 32 KiB L1 + 64 KiB SPM, while the cache-only baseline
    /// spends the same 96 KiB entirely on its L1 — the baseline is not
    /// handicapped by the silicon the SPM occupies.
    pub fn tiled(cores: usize, mode: HierarchyMode) -> Self {
        // 96 KiB needs 6 ways to keep the set count a power of two.
        let (l1_bytes, l1_ways) = match mode {
            HierarchyMode::Hybrid => (32 * 1024, 4),
            HierarchyMode::CacheOnly => (96 * 1024, 6),
        };
        MachineConfig {
            cores,
            mode,
            l1_bytes,
            l1_ways,
            l1_hit_lat: 2,
            prefetcher: true,
            prefetch_hit_lat: 2,
            spm_bytes: 64 * 1024,
            spm_lat: 2,
            dma_tile_bytes: 1024,
            dma_setup_lat: 24,
            dma_per_line_lat: 2,
            l2_bytes: 16 * 1024 * 1024,
            l2_ways: 16,
            l2_hit_lat: 12,
            l2_bank_contention: false,
            l2_service_lat: 4,
            noc_hop_lat: 2,
            data_flits: 5,
            ctrl_flits: 1,
            dram_lat: 120,
            line_bytes: 64,
        }
    }

    /// Mesh edge length (tiles are arranged in a √cores × √cores mesh;
    /// non-square counts round the width up).
    pub fn mesh_width(&self) -> usize {
        (self.cores as f64).sqrt().ceil() as usize
    }

    /// L1 line count.
    pub fn l1_lines(&self) -> usize {
        self.l1_bytes / self.line_bytes as usize
    }

    /// L2 line count (whole distributed L2).
    pub fn l2_lines(&self) -> usize {
        self.l2_bytes / self.line_bytes as usize
    }

    /// Lines per DMA tile.
    pub fn tile_lines(&self) -> u64 {
        self.dma_tile_bytes / self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_defaults() {
        let c = MachineConfig::paper_64core(HierarchyMode::Hybrid);
        assert_eq!(c.cores, 64);
        assert_eq!(c.mesh_width(), 8);
        assert_eq!(c.l1_lines(), 512);
        assert_eq!(c.l2_lines(), 262_144);
        assert_eq!(c.tile_lines(), 16);
    }

    #[test]
    fn baseline_is_iso_capacity() {
        let hybrid = MachineConfig::paper_64core(HierarchyMode::Hybrid);
        let cache = MachineConfig::paper_64core(HierarchyMode::CacheOnly);
        assert_eq!(
            cache.l1_bytes,
            hybrid.l1_bytes + hybrid.spm_bytes,
            "cache-only baseline gets the SPM's silicon back"
        );
    }

    #[test]
    fn non_square_mesh_rounds_up() {
        let c = MachineConfig::tiled(10, HierarchyMode::CacheOnly);
        assert_eq!(c.mesh_width(), 4);
    }

    #[test]
    fn hierarchy_latencies_ordered() {
        let c = MachineConfig::paper_64core(HierarchyMode::Hybrid);
        assert!(c.spm_lat <= c.l1_hit_lat);
        assert!(c.l1_hit_lat < c.l2_hit_lat);
        assert!(c.l2_hit_lat < c.dram_lat);
    }
}
