//! DRAM model: fixed access latency with open-row locality bonus and
//! access counting.

/// A simple banked DRAM behind the mesh's corner memory controllers.
#[derive(Clone, Debug)]
pub struct Dram {
    base_lat: u64,
    /// Last row touched per bank (open-row hit detection).
    open_rows: Vec<Option<u64>>,
    pub accesses: u64,
    pub row_hits: u64,
}

/// Bytes per DRAM row (8 KiB) — consecutive lines land in the same row.
const ROW_BYTES: u64 = 8192;
/// Row-hit accesses save this fraction of the base latency.
const ROW_HIT_DISCOUNT_NUM: u64 = 2;
const ROW_HIT_DISCOUNT_DEN: u64 = 5;

impl Dram {
    pub fn new(banks: usize, base_lat: u64) -> Self {
        assert!(banks >= 1);
        Dram {
            base_lat,
            open_rows: vec![None; banks],
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Access the line at byte address `line * 64`; returns the latency.
    pub fn access(&mut self, line: u64) -> u64 {
        self.accesses += 1;
        let addr = line * 64;
        let bank = (addr / ROW_BYTES) as usize % self.open_rows.len();
        let row = addr / (ROW_BYTES * self.open_rows.len() as u64);
        let hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);
        if hit {
            self.row_hits += 1;
            self.base_lat - self.base_lat * ROW_HIT_DISCOUNT_NUM / ROW_HIT_DISCOUNT_DEN
        } else {
            self.base_lat
        }
    }

    /// Row hit ratio so far.
    pub fn row_hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_a_row_miss() {
        let mut d = Dram::new(4, 120);
        assert_eq!(d.access(0), 120);
        assert_eq!(d.row_hits, 0);
    }

    #[test]
    fn same_row_hits_are_cheaper() {
        let mut d = Dram::new(4, 120);
        d.access(0);
        let lat = d.access(1); // next line, same 8K row
        assert_eq!(lat, 120 - 48);
        assert_eq!(d.row_hits, 1);
    }

    #[test]
    fn distant_lines_use_other_banks() {
        let mut d = Dram::new(4, 120);
        d.access(0);
        // 8 KiB away: next bank, row miss there.
        assert_eq!(d.access(ROW_BYTES / 64), 120);
        // Returning to line 1 still hits bank 0's open row.
        assert_eq!(d.access(1), 120 - 48);
        assert!((d.row_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }
}
