//! # raa-sim — a trace-driven tiled-manycore memory-hierarchy simulator
//!
//! The Fig. 1 experiment of the paper compares a conventional cache-only
//! 64-core processor against the proposed **hybrid memory hierarchy**
//! (per-tile scratchpads + caches, with a coherence protocol that lets the
//! compiler map strided accesses to the scratchpads even in the presence
//! of unknown aliasing hazards).  This crate is the simulator substrate
//! for that comparison:
//!
//! * [`cache::Cache`] — set-associative write-back caches with LRU.
//! * [`coherence::Directory`] — directory MESI for the private L1s.
//! * [`noc::Mesh`] — 2-D mesh with XY routing, hop latency and flit
//!   accounting (the paper's NoC-traffic metric).
//! * [`dram::Dram`] — banked memory latency/energy model.
//! * [`spm::SpmState`] — per-tile scratchpads fed by tiling DMA (the
//!   compiler's software cache).
//! * [`hybrid::SpmDirectory`] — the SPM map directory + alias filter that
//!   serve [`raa_workloads::RefClass::RandomUnknown`] accesses from
//!   whichever memory holds the valid copy.
//! * [`machine::Machine`] — the per-core trace executor tying it together.
//!
//! The simulator is cycle-approximate: cores are in-order, contention is
//! not queued, but every latency, energy and traffic constant is relative
//! and CACTI-class, which is what the *relative* claims of Fig. 1 rest
//! on.  See DESIGN.md §4 for the substitution argument.

//! ## Example
//!
//! ```
//! use raa_sim::{HierarchyMode, Machine, MachineConfig};
//! use raa_workloads::synthetic;
//!
//! // A 4-tile machine in each mode, fed the same strided stream.
//! let run = |mode| {
//!     let mut m = Machine::new(MachineConfig::tiled(4, mode), vec![(4096, 1 << 20)]);
//!     m.run_streams(vec![Box::new(synthetic::strided_sweep(4096, 4000, 4)) as _])
//! };
//! let cache = run(HierarchyMode::CacheOnly);
//! let hybrid = run(HierarchyMode::Hybrid);
//! assert!(hybrid.energy.total() < cache.energy.total());
//! assert!(hybrid.noc_flits < cache.noc_flits);
//! ```

pub mod cache;
pub mod coherence;
pub mod config;
pub mod dram;
pub mod energy;
pub mod fault;
pub mod hybrid;
pub mod machine;
pub mod noc;
pub mod spm;

pub use config::{HierarchyMode, MachineConfig};
pub use energy::EnergyBreakdown;
pub use fault::{
    BitFaultPlan, CrcLink, EccDomain, EccEvent, EccStats, EccVerdict, MemStructure, ScrubSummary,
};
pub use machine::{Machine, MachineReport};
