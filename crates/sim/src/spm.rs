//! Per-tile scratchpad state: the compiler's tiling software cache.
//!
//! The compiler transforms strided loops to work on SPM-resident,
//! *packed* tiles filled by a gather-capable DMA engine (Cell-style):
//! whatever the stride, the DMA packs the next `tile_lines` lines of the
//! access stream into the scratchpad.  For trace-driven simulation we
//! therefore track residency at **line** granularity with LRU over the
//! SPM capacity, and report fills/writebacks so the machine can charge
//! the (amortised) DMA setup, bulk NoC traffic and energy.

use std::collections::HashMap;

/// Result of an SPM reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmAccess {
    /// The line is resident.
    Hit,
    /// The line had to be DMA-streamed in; `evicted` reports a replaced
    /// line as `(line, dirty)` — dirty lines need a writeback transfer,
    /// and either way the SPM directory must drop the residency record.
    Fill { evicted: Option<(u64, bool)> },
}

#[derive(Clone, Copy, Debug)]
struct LineState {
    dirty: bool,
    lru: u64,
}

/// One core's scratchpad: a software-managed line store with LRU
/// replacement (the double-buffered tile schedule the compiler emits).
#[derive(Clone, Debug)]
pub struct SpmState {
    capacity_lines: usize,
    lines: HashMap<u64, LineState>,
    clock: u64,
    pub hits: u64,
    pub fills: u64,
    pub writebacks: u64,
}

impl SpmState {
    pub fn new(spm_bytes: usize, line_bytes: u64) -> Self {
        assert!(line_bytes > 0 && spm_bytes as u64 >= line_bytes);
        SpmState {
            capacity_lines: (spm_bytes as u64 / line_bytes) as usize,
            lines: HashMap::new(),
            clock: 0,
            hits: 0,
            fills: 0,
            writebacks: 0,
        }
    }

    /// Reference the line containing byte address `addr`; `store` marks
    /// it dirty.
    pub fn access(&mut self, addr: u64, store: bool) -> SpmAccess {
        self.clock += 1;
        let clock = self.clock;
        let line = addr >> 6;
        if let Some(l) = self.lines.get_mut(&line) {
            l.lru = clock;
            l.dirty |= store;
            self.hits += 1;
            return SpmAccess::Hit;
        }
        let mut evicted = None;
        if self.lines.len() >= self.capacity_lines {
            let (&victim, _) = self
                .lines
                .iter()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty when full");
            let l = self.lines.remove(&victim).expect("victim exists");
            if l.dirty {
                self.writebacks += 1;
            }
            evicted = Some((victim, l.dirty));
        }
        self.lines.insert(
            line,
            LineState {
                dirty: store,
                lru: clock,
            },
        );
        self.fills += 1;
        SpmAccess::Fill { evicted }
    }

    /// Is the line containing `addr` resident?
    pub fn resident(&self, addr: u64) -> bool {
        self.lines.contains_key(&(addr >> 6))
    }

    /// Access a resident line on behalf of a *remote* core (the hybrid
    /// protocol's unknown-alias path). Returns false when not resident
    /// (stale directory entry).
    pub fn touch_remote(&mut self, addr: u64, store: bool) -> bool {
        match self.lines.get_mut(&(addr >> 6)) {
            Some(l) => {
                l.dirty |= store;
                self.hits += 1;
                true
            }
            None => false,
        }
    }

    /// Drop a line (cross-SPM invalidation when another core writes
    /// it). Returns `Some(dirty)` when it was resident.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        self.lines.remove(&line).map(|l| l.dirty)
    }

    /// Resident line numbers (for consistency checks).
    pub fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.lines.keys().copied()
    }

    pub fn capacity_lines(&self) -> usize {
        self.capacity_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_stream_hits_within_lines() {
        let mut s = SpmState::new(4096, 64);
        // 8 consecutive 8-byte refs share one line: 1 fill + 7 hits.
        for a in (0..64).step_by(8) {
            s.access(a, false);
        }
        assert_eq!(s.fills, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn large_strides_fill_once_per_line() {
        let mut s = SpmState::new(64 * 1024, 64);
        // Stride of 1 KiB: every access a distinct line, but each line
        // is fetched exactly once even when revisited.
        for rep in 0..2 {
            for i in 0..32u64 {
                let r = s.access(i * 1024, false);
                if rep == 0 {
                    assert!(matches!(r, SpmAccess::Fill { .. }));
                } else {
                    assert_eq!(r, SpmAccess::Hit);
                }
            }
        }
        assert_eq!(s.fills, 32);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut s = SpmState::new(128, 64); // 2 lines
        s.access(0, false);
        s.access(64, false);
        s.access(0, false); // touch line 0
        match s.access(128, false) {
            SpmAccess::Fill {
                evicted: Some((line, dirty)),
            } => {
                assert_eq!(line, 1, "LRU evicts line 1");
                assert!(!dirty);
            }
            r => panic!("expected eviction, got {r:?}"),
        }
        assert!(s.resident(0) && s.resident(128) && !s.resident(64));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut s = SpmState::new(64, 64); // 1 line
        s.access(0, true);
        match s.access(64, false) {
            SpmAccess::Fill {
                evicted: Some((line, dirty)),
            } => {
                assert_eq!(line, 0);
                assert!(dirty);
            }
            r => panic!("expected dirty eviction, got {r:?}"),
        }
        assert_eq!(s.writebacks, 1);
    }

    #[test]
    fn invalidate_drops_line() {
        let mut s = SpmState::new(256, 64);
        s.access(0, true);
        s.access(64, false);
        assert_eq!(s.invalidate(0), Some(true));
        assert_eq!(s.invalidate(1), Some(false));
        assert_eq!(s.invalidate(9), None);
        assert!(!s.resident(0));
    }

    #[test]
    fn remote_touch_requires_residency() {
        let mut s = SpmState::new(128, 64);
        assert!(!s.touch_remote(8, true));
        s.access(0, false);
        assert!(s.touch_remote(8, true), "same line, different offset");
        // The remote store dirtied the line.
        s.access(64, false);
        match s.access(128, false) {
            SpmAccess::Fill {
                evicted: Some((line, dirty)),
            } => {
                assert_eq!(line, 0);
                assert!(dirty, "remote store must dirty the line");
            }
            r => panic!("expected eviction, got {r:?}"),
        }
    }
}
