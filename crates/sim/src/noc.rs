//! 2-D mesh network-on-chip model: XY routing distance, hop latency and
//! flit-hop traffic accounting (the Fig. 1 "NoC traffic" metric).

/// A 2-D mesh of `width × width` routers, one per tile, with memory
/// controllers at the four corners.
#[derive(Clone, Debug)]
pub struct Mesh {
    width: usize,
    hop_lat: u64,
    /// Total flits injected (what Fig. 1 plots the reduction of).
    pub flits: u64,
    /// Total flit-hops (traffic × distance — the energy-relevant metric).
    pub flit_hops: u64,
    /// Messages sent.
    pub messages: u64,
}

impl Mesh {
    pub fn new(width: usize, hop_lat: u64) -> Self {
        assert!(width >= 1);
        Mesh {
            width,
            hop_lat,
            flits: 0,
            flit_hops: 0,
            messages: 0,
        }
    }

    fn coords(&self, tile: usize) -> (usize, usize) {
        (tile % self.width, tile / self.width)
    }

    /// Manhattan (XY-routed) hop distance between two tiles.
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// The mesh corner (memory controller) nearest to `tile`.
    pub fn nearest_corner(&self, tile: usize) -> usize {
        let w = self.width;
        let corners = [0, w - 1, w * (w - 1), w * w - 1];
        *corners
            .iter()
            .min_by_key(|&&c| self.hops(tile, c))
            .expect("four corners")
    }

    /// Send a message of `flits` flits from `from` to `to`; returns the
    /// traversal latency and records traffic. Messages to self are free.
    pub fn send(&mut self, from: usize, to: usize, flits: u64) -> u64 {
        let hops = self.hops(from, to);
        if hops == 0 {
            return 0;
        }
        self.messages += 1;
        self.flits += flits;
        self.flit_hops += flits * hops;
        // Wormhole-ish: head latency + one cycle per extra flit.
        hops * self.hop_lat + flits.saturating_sub(1)
    }

    /// Round trip: request of `req_flits` then response of `resp_flits`.
    pub fn round_trip(&mut self, from: usize, to: usize, req_flits: u64, resp_flits: u64) -> u64 {
        self.send(from, to, req_flits) + self.send(to, from, resp_flits)
    }

    pub fn width(&self) -> usize {
        self.width
    }

    /// Average hop distance between distinct random tiles (analytic, for
    /// sanity checks): 2·(w²−1)/(3·w) for an XY mesh.
    pub fn avg_distance(&self) -> f64 {
        let w = self.width as f64;
        2.0 * (w * w - 1.0) / (3.0 * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_distances() {
        let m = Mesh::new(8, 2);
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 7), 7);
        assert_eq!(m.hops(0, 63), 14);
        assert_eq!(m.hops(9, 18), 2); // (1,1) -> (2,2)
    }

    #[test]
    fn self_messages_are_free() {
        let mut m = Mesh::new(4, 2);
        assert_eq!(m.send(5, 5, 5), 0);
        assert_eq!(m.flits, 0);
        assert_eq!(m.messages, 0);
    }

    #[test]
    fn traffic_accumulates() {
        let mut m = Mesh::new(4, 2);
        let lat = m.send(0, 3, 5); // 3 hops
        assert_eq!(lat, 3 * 2 + 4);
        assert_eq!(m.flits, 5);
        assert_eq!(m.flit_hops, 15);
        m.round_trip(0, 3, 1, 5);
        assert_eq!(m.flits, 11);
        assert_eq!(m.messages, 3);
    }

    #[test]
    fn corners_are_nearest() {
        let m = Mesh::new(8, 1);
        assert_eq!(m.nearest_corner(0), 0);
        assert_eq!(m.nearest_corner(63), 63);
        assert_eq!(m.nearest_corner(9), 0); // (1,1) closest to (0,0)
        assert_eq!(m.nearest_corner(14), 7); // (6,1) closest to (7,0)
    }

    #[test]
    fn avg_distance_formula() {
        let m = Mesh::new(8, 1);
        assert!((m.avg_distance() - 5.25).abs() < 1e-12);
    }
}
