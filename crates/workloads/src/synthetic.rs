//! Synthetic reference streams for unit tests and ablation studies.

use crate::kernels::mix64;
use crate::layout::AddressSpace;
use crate::trace::{MemRef, RefClass, TraceEvent};

/// A pure unit-stride read/write sweep over `n` 8-byte elements starting
/// at `base`, classified strided. `write_every` inserts a store after
/// every that-many loads (0 = loads only).
pub fn strided_sweep(
    base: u64,
    n: u64,
    write_every: u64,
) -> impl Iterator<Item = TraceEvent> + Send {
    (0..n).flat_map(move |i| {
        let addr = base + i * 8;
        let mut v = vec![TraceEvent::Mem(MemRef::load(addr, 8, RefClass::Strided))];
        if write_every > 0 && i % write_every == write_every - 1 {
            v.push(TraceEvent::Mem(MemRef::store(addr, 8, RefClass::Strided)));
        }
        v
    })
}

/// `n` uniformly random 8-byte loads within `[base, base + span)`,
/// classified with the given class. Deterministic in `seed`.
pub fn random_refs(
    base: u64,
    span: u64,
    n: u64,
    class: RefClass,
    seed: u64,
) -> impl Iterator<Item = TraceEvent> + Send {
    let slots = (span / 8).max(1);
    (0..n).map(move |i| {
        let off = mix64(seed ^ i) % slots;
        TraceEvent::Mem(MemRef::load(base + off * 8, 8, class))
    })
}

/// A mixed stream: `strided_frac` (0..=100, percent) of references are
/// strided over one array, the rest random-unknown over another.  Used by
/// the hybrid-hierarchy ablation to sweep the classification mix.
pub fn mixed_stream(
    strided_pct: u64,
    n: u64,
    seed: u64,
) -> (AddressSpace, impl Iterator<Item = TraceEvent> + Send) {
    assert!(strided_pct <= 100);
    let mut space = AddressSpace::new();
    let s = space.alloc("stream", n.max(1) * 8, true);
    let r = space.alloc("random", 1 << 16, false);
    let (sd, rd) = (space.get(s).clone(), space.get(r).clone());
    let iter = (0..n).map(move |i| {
        if mix64(seed ^ i) % 100 < strided_pct {
            TraceEvent::Mem(MemRef::load(sd.elem(i, 8), 8, RefClass::Strided))
        } else {
            let off = mix64(seed ^ (i << 7)) % (rd.bytes / 8);
            TraceEvent::Mem(MemRef::load(rd.elem(off, 8), 8, RefClass::RandomUnknown))
        }
    });
    (space, iter)
}

/// A pointer-chase style stream with poor locality: `n` dependent random
/// loads over `span` bytes (worst case for any cache).
pub fn pointer_chase(
    base: u64,
    span: u64,
    n: u64,
    seed: u64,
) -> impl Iterator<Item = TraceEvent> + Send {
    let slots = (span / 8).max(1);
    let mut cur = seed;
    (0..n).map(move |_| {
        cur = mix64(cur);
        let addr = base + (cur % slots) * 8;
        TraceEvent::Mem(MemRef::load(addr, 8, RefClass::RandomNoAlias))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSummary;

    #[test]
    fn strided_sweep_addresses_ascend() {
        let addrs: Vec<u64> = strided_sweep(4096, 10, 0)
            .filter_map(|e| e.as_mem().map(|m| m.addr))
            .collect();
        assert_eq!(addrs.len(), 10);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 8);
        }
    }

    #[test]
    fn write_every_inserts_stores() {
        let s = TraceSummary::of(strided_sweep(0, 12, 4));
        assert_eq!(s.loads, 12);
        assert_eq!(s.stores, 3);
    }

    #[test]
    fn random_refs_stay_in_span() {
        for ev in random_refs(8192, 1024, 200, RefClass::RandomUnknown, 1) {
            let m = ev.as_mem().unwrap();
            assert!(m.addr >= 8192 && m.addr < 8192 + 1024);
        }
    }

    #[test]
    fn mixed_stream_ratio_roughly_holds() {
        let (_, it) = mixed_stream(70, 10_000, 3);
        let s = TraceSummary::of(it);
        let frac = s.strided_fraction();
        assert!((frac - 0.7).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn mixed_stream_extremes() {
        let (_, it) = mixed_stream(100, 500, 3);
        assert!((TraceSummary::of(it).strided_fraction() - 1.0).abs() < 1e-12);
        let (_, it) = mixed_stream(0, 500, 3);
        assert_eq!(TraceSummary::of(it).strided_fraction(), 0.0);
    }

    #[test]
    fn pointer_chase_is_deterministic() {
        let a: Vec<_> = pointer_chase(0, 4096, 50, 9).collect();
        let b: Vec<_> = pointer_chase(0, 4096, 50, 9).collect();
        assert_eq!(a, b);
    }
}
