//! Trace validators: structural invariants every kernel must satisfy
//! before it is worth simulating.

use crate::kernels::Kernel;
use crate::trace::{RefClass, TraceEvent};

/// The outcome of validating one kernel.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    pub cores_checked: usize,
    pub events: u64,
    pub mem_refs: u64,
    pub barriers_per_core: Vec<u64>,
}

/// Validate a kernel's traces:
///
/// 1. every memory reference lands inside a declared array;
/// 2. `RandomNoAlias` references never touch SPM-mapped arrays (that
///    would be a compiler misclassification — proven-no-alias accesses
///    to mapped data cannot exist by definition);
/// 3. every core emits the same number of barriers (BSP kernels would
///    deadlock otherwise);
/// 4. traces are reproducible (two generations are identical).
pub fn validate_kernel(kernel: &dyn Kernel) -> Result<ValidationReport, String> {
    let mut report = ValidationReport {
        cores_checked: kernel.cores(),
        ..Default::default()
    };
    let space = kernel.space();
    for core in 0..kernel.cores() {
        let mut barriers = 0u64;
        for (i, ev) in kernel.core_trace(core).enumerate() {
            report.events += 1;
            match ev {
                TraceEvent::Barrier => barriers += 1,
                TraceEvent::Compute(_) => {}
                TraceEvent::Mem(m) => {
                    report.mem_refs += 1;
                    let arr = space.locate(m.addr).ok_or_else(|| {
                        format!(
                            "{}: core {core} event {i}: address {:#x} outside every array",
                            kernel.name(),
                            m.addr
                        )
                    })?;
                    if m.class == RefClass::RandomNoAlias && arr.spm_mapped {
                        return Err(format!(
                            "{}: core {core} event {i}: proven-no-alias reference into \
                             SPM-mapped array '{}' — misclassification",
                            kernel.name(),
                            arr.name
                        ));
                    }
                }
            }
        }
        report.barriers_per_core.push(barriers);
    }
    if report.barriers_per_core.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!(
            "{}: unequal barrier counts across cores: {:?}",
            kernel.name(),
            report.barriers_per_core
        ));
    }
    // Determinism: re-generate core 0 and compare.
    let a: Vec<TraceEvent> = kernel.core_trace(0).collect();
    let b: Vec<TraceEvent> = kernel.core_trace(0).collect();
    if a != b {
        return Err(format!("{}: trace is not deterministic", kernel.name()));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{all_kernels, KernelCfg, Scale};
    use crate::layout::AddressSpace;
    use crate::trace::MemRef;

    #[test]
    fn all_shipped_kernels_validate() {
        for scale in [Scale::Test, Scale::Small] {
            for k in all_kernels(KernelCfg::new(4, scale)) {
                let r = validate_kernel(k.as_ref()).unwrap_or_else(|e| panic!("{e}"));
                assert_eq!(r.cores_checked, 4);
                assert!(r.events > 0);
            }
        }
    }

    /// A deliberately broken kernel to prove the validator bites.
    struct Broken {
        space: AddressSpace,
        mode: u8,
    }

    impl Broken {
        fn new(mode: u8) -> Self {
            let mut space = AddressSpace::new();
            space.alloc("mapped", 4096, true);
            Broken { space, mode }
        }
    }

    impl Kernel for Broken {
        fn name(&self) -> &'static str {
            "BROKEN"
        }
        fn space(&self) -> &AddressSpace {
            &self.space
        }
        fn cores(&self) -> usize {
            2
        }
        fn core_trace(&self, core: usize) -> Box<dyn Iterator<Item = TraceEvent> + Send + '_> {
            let base = self.space.get(crate::layout::ArrayId(0)).base;
            let evs: Vec<TraceEvent> = match self.mode {
                // Out-of-bounds address.
                0 => vec![TraceEvent::Mem(MemRef::load(
                    base + (1 << 20),
                    8,
                    RefClass::Strided,
                ))],
                // No-alias reference into a mapped array.
                1 => vec![TraceEvent::Mem(MemRef::load(
                    base,
                    8,
                    RefClass::RandomNoAlias,
                ))],
                // Mismatched barrier counts.
                _ => {
                    if core == 0 {
                        vec![TraceEvent::Barrier, TraceEvent::Barrier]
                    } else {
                        vec![TraceEvent::Barrier]
                    }
                }
            };
            Box::new(evs.into_iter())
        }
    }

    #[test]
    fn validator_rejects_out_of_bounds() {
        let err = validate_kernel(&Broken::new(0)).unwrap_err();
        assert!(err.contains("outside every array"), "{err}");
    }

    #[test]
    fn validator_rejects_misclassification() {
        let err = validate_kernel(&Broken::new(1)).unwrap_err();
        assert!(err.contains("misclassification"), "{err}");
    }

    #[test]
    fn validator_rejects_barrier_mismatch() {
        let err = validate_kernel(&Broken::new(2)).unwrap_err();
        assert!(err.contains("unequal barrier counts"), "{err}");
    }
}
