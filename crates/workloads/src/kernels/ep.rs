//! EP — embarrassingly parallel (NAS EP): Gaussian-pair generation.
//!
//! EP is register-resident: long stretches of pure computation with only
//! a sporadic constant-table load and a rare counter update.  It is the
//! paper's control case — "even for benchmarks with minimal accesses to
//! the SPM (as in the case of EP), performance, energy consumption and
//! NoC traffic are not degraded" — so the hybrid hierarchy must neither
//! help nor hurt here.

use super::{chunked, mix64, Kernel, KernelCfg, Scale};
use crate::layout::{AddressSpace, ArrayId};
use crate::trace::{MemRef, RefClass, TraceEvent};

/// EP kernel instance.
pub struct Ep {
    cfg: KernelCfg,
    batches: usize,
    space: AddressSpace,
    table: ArrayId,
    counts: ArrayId,
}

/// Batches are chunked in groups of this many to bound per-chunk allocation.
const BATCHES_PER_CHUNK: usize = 256;

impl Ep {
    pub fn new(cfg: KernelCfg) -> Self {
        let batches = match cfg.scale {
            Scale::Test => 256,
            Scale::Small => 2_048,
            Scale::Standard => 20_480,
        };
        let mut space = AddressSpace::new();
        // A small constant table (log/sqrt coefficients) and the 10-bin
        // annulus counters.
        let table = space.alloc("table", 128 * 8, true);
        let counts = space.alloc("counts", 10 * 8, false);
        Ep {
            cfg,
            batches,
            space,
            table,
            counts,
        }
    }
}

impl Kernel for Ep {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn cores(&self) -> usize {
        self.cfg.cores
    }

    fn core_trace(&self, core: usize) -> Box<dyn Iterator<Item = TraceEvent> + Send + '_> {
        assert!(core < self.cfg.cores);
        let table = self.space.get(self.table).clone();
        let counts = self.space.get(self.counts).clone();
        let seed = self.cfg.seed ^ ((core as u64) << 32);
        let chunks = self.batches.div_ceil(BATCHES_PER_CHUNK);
        let batches = self.batches;
        chunked(chunks, move |c| {
            let lo = c * BATCHES_PER_CHUNK;
            let hi = ((c + 1) * BATCHES_PER_CHUNK).min(batches);
            let mut ev = Vec::with_capacity((hi - lo) * 3);
            for b in lo..hi {
                // The Box–Muller style batch: dominated by arithmetic;
                // the RNG state and coefficients live in registers.
                ev.push(TraceEvent::Compute(60));
                // A coefficient block reload at batch-block boundaries.
                if b % 16 == 0 {
                    let t = mix64(seed ^ b as u64) % 128;
                    ev.push(TraceEvent::Mem(MemRef::load(
                        table.elem(t, 8),
                        8,
                        RefClass::Strided,
                    )));
                }
                // Every 32nd batch lands a sample in an annulus bin.
                if b % 32 == 0 {
                    let bin = mix64(seed ^ (b as u64) << 8) % 10;
                    ev.push(TraceEvent::Mem(MemRef::load(
                        counts.elem(bin, 8),
                        8,
                        RefClass::RandomNoAlias,
                    )));
                    ev.push(TraceEvent::Mem(MemRef::store(
                        counts.elem(bin, 8),
                        8,
                        RefClass::RandomNoAlias,
                    )));
                }
            }
            ev
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSummary;

    #[test]
    fn compute_dominates_memory() {
        let ep = Ep::new(KernelCfg::new(4, Scale::Test));
        let s = TraceSummary::of(ep.core_trace(0));
        assert!(
            s.mem_intensity() < 0.01,
            "EP must be compute-bound, got {} refs/cycle",
            s.mem_intensity()
        );
        assert!(s.compute_cycles >= 256 * 60);
    }

    #[test]
    fn counter_updates_are_noalias_random() {
        let ep = Ep::new(KernelCfg::new(2, Scale::Test));
        let s = TraceSummary::of(ep.core_trace(1));
        assert!(s.random_noalias > 0);
        assert_eq!(s.random_unknown, 0, "EP has no unknown-alias accesses");
    }

    #[test]
    fn footprint_is_tiny() {
        let ep = Ep::new(KernelCfg::new(64, Scale::Standard));
        assert!(ep.space().footprint() < 16 * 1024);
    }
}
