//! The six NAS-like kernels of the Fig. 1 experiment.

pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod mg;
pub mod sp;

use crate::layout::AddressSpace;
use crate::trace::TraceEvent;

/// Problem-size class, loosely mirroring the NAS class system but scaled
/// to trace-driven simulation budgets.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scale {
    /// Minimal sizes for unit tests (hundreds of refs per core).
    Test,
    /// Quick experiments (thousands of refs per core).
    Small,
    /// The Fig. 1 configuration (on the order of 1e5 refs per core).
    #[default]
    Standard,
}

/// Common kernel configuration.
#[derive(Clone, Copy, Debug)]
pub struct KernelCfg {
    /// Number of cores the work is partitioned over.
    pub cores: usize,
    /// Problem size class.
    pub scale: Scale,
    /// Seed for the deterministic pseudo-random parts (sparsity patterns,
    /// keys, ...).
    pub seed: u64,
}

impl Default for KernelCfg {
    fn default() -> Self {
        KernelCfg {
            cores: 64,
            scale: Scale::Standard,
            seed: 0x5eed,
        }
    }
}

impl KernelCfg {
    pub fn new(cores: usize, scale: Scale) -> Self {
        KernelCfg {
            cores,
            scale,
            ..Default::default()
        }
    }
}

/// A workload kernel: an address-space layout plus one lazily generated
/// trace per core.
pub trait Kernel: Send + Sync {
    /// Short NAS-style name ("CG", "EP", ...).
    fn name(&self) -> &'static str;

    /// The array layout (the hybrid machine programs its SPM directory
    /// from the SPM-mapped ranges declared here).
    fn space(&self) -> &AddressSpace;

    /// Number of cores this kernel was configured for.
    fn cores(&self) -> usize;

    /// The reference stream of one core. Streams of different cores may
    /// be consumed concurrently and are deterministic.
    fn core_trace(&self, core: usize) -> Box<dyn Iterator<Item = TraceEvent> + Send + '_>;
}

/// Instantiate all six kernels in the Fig. 1 order (CG EP FT IS MG SP).
pub fn all_kernels(cfg: KernelCfg) -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(cg::Cg::new(cfg)),
        Box::new(ep::Ep::new(cfg)),
        Box::new(ft::Ft::new(cfg)),
        Box::new(is::Is::new(cfg)),
        Box::new(mg::Mg::new(cfg)),
        Box::new(sp::Sp::new(cfg)),
    ]
}

/// Build a lazily chunked trace: `make(chunk)` is called once per chunk
/// index, keeping at most one chunk materialised per live iterator.
/// Chunks are sweeps/phases of the BSP kernels, so a [`TraceEvent::Barrier`]
/// is emitted after each one.
pub(crate) fn chunked<F>(chunks: usize, make: F) -> Box<dyn Iterator<Item = TraceEvent> + Send>
where
    F: Fn(usize) -> Vec<TraceEvent> + Send + 'static,
{
    Box::new((0..chunks).flat_map(move |c| {
        let mut v = make(c);
        v.push(TraceEvent::Barrier);
        v.into_iter()
    }))
}

/// SplitMix64: a tiny stateless mixer used for deterministic
/// pseudo-random indices (sparsity patterns, keys) without dragging an
/// RNG through iterator state.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSummary;

    #[test]
    fn all_kernels_instantiate_and_stream() {
        let cfg = KernelCfg::new(4, Scale::Test);
        for k in all_kernels(cfg) {
            assert_eq!(k.cores(), 4);
            let s = TraceSummary::of(k.core_trace(0));
            assert!(s.mem_refs > 0 || k.name() == "EP", "{} empty", k.name());
            assert!(!k.space().arrays().is_empty());
        }
    }

    #[test]
    fn kernel_names_match_fig1_order() {
        let names: Vec<&str> = all_kernels(KernelCfg::new(2, Scale::Test))
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(names, vec!["CG", "EP", "FT", "IS", "MG", "SP"]);
    }

    #[test]
    fn traces_are_deterministic() {
        let cfg = KernelCfg::new(2, Scale::Test);
        for (a, b) in all_kernels(cfg).iter().zip(all_kernels(cfg).iter()) {
            let ta: Vec<_> = a.core_trace(1).collect();
            let tb: Vec<_> = b.core_trace(1).collect();
            assert_eq!(ta, tb, "{} not deterministic", a.name());
        }
    }

    #[test]
    fn scales_order_trace_sizes() {
        for mk in [
            |c| Box::new(cg::Cg::new(c)) as Box<dyn Kernel>,
            |c| Box::new(is::Is::new(c)) as Box<dyn Kernel>,
        ] {
            let small = TraceSummary::of(mk(KernelCfg::new(2, Scale::Test)).core_trace(0)).mem_refs;
            let big = TraceSummary::of(mk(KernelCfg::new(2, Scale::Small)).core_trace(0)).mem_refs;
            assert!(big > small, "Small must exceed Test ({big} vs {small})");
        }
    }
}
