//! FT — 3-D FFT (NAS FT): butterfly passes with compile-time-known
//! strides plus twiddle-factor tables.
//!
//! Every access is affine in the loop indices, so the compiler classifies
//! the whole kernel [`RefClass::Strided`] and tiles it into the
//! scratchpads — FT is the best case for the hybrid hierarchy.

use super::{chunked, Kernel, KernelCfg, Scale};
use crate::layout::{AddressSpace, ArrayId};
use crate::trace::{MemRef, RefClass, TraceEvent};

/// FT kernel instance.
pub struct Ft {
    cfg: KernelCfg,
    /// Total complex points (power of two).
    n: u64,
    stages: u32,
    space: AddressSpace,
    u: ArrayId,
    twiddle: ArrayId,
}

impl Ft {
    pub fn new(cfg: KernelCfg) -> Self {
        let log_n: u32 = match cfg.scale {
            Scale::Test => 10,
            Scale::Small => 14,
            Scale::Standard => 17,
        };
        let n = 1u64 << log_n;
        assert!(
            cfg.cores as u64 <= n / 2,
            "FT needs at least two butterflies per core"
        );
        let mut space = AddressSpace::new();
        let u = space.alloc("u", n * 16, true); // complex f64
        let twiddle = space.alloc("twiddle", (n / 2) * 16, true);
        Ft {
            cfg,
            n,
            stages: log_n,
            space,
            u,
            twiddle,
        }
    }
}

impl Kernel for Ft {
    fn name(&self) -> &'static str {
        "FT"
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn cores(&self) -> usize {
        self.cfg.cores
    }

    fn core_trace(&self, core: usize) -> Box<dyn Iterator<Item = TraceEvent> + Send + '_> {
        assert!(core < self.cfg.cores);
        let n = self.n;
        let cores = self.cfg.cores as u64;
        let u = self.space.get(self.u).clone();
        let tw = self.space.get(self.twiddle).clone();
        let half = n / 2;
        let elems_per_core = n / cores;
        let local_stages = elems_per_core.trailing_zeros();
        let e0 = core as u64 * elems_per_core;
        // Distributed FFT structure: all stages whose stride fits inside
        // the core's own element block run locally; one all-to-all
        // transpose re-localises the data; the remaining (cross-core)
        // stages then also run on local indices. Chunks: local stages,
        // the transpose, then the rest.
        let total_chunks = self.stages as usize + 1;
        chunked(total_chunks, move |chunk| {
            let mut ev = Vec::with_capacity((elems_per_core * 3) as usize);
            if chunk == local_stages as usize {
                // The transpose: read own block, scatter to the
                // bit-reversed-across-cores layout (cross-core traffic,
                // once).
                for k in 0..elems_per_core {
                    let src = e0 + k;
                    // Destination block rotates by element phase.
                    let dst_core = (core as u64 + 1 + k % cores.max(1)) % cores;
                    let dst = dst_core * elems_per_core + k;
                    ev.push(TraceEvent::Mem(MemRef::load(
                        u.elem(src, 16),
                        8,
                        RefClass::Strided,
                    )));
                    ev.push(TraceEvent::Mem(MemRef::store(
                        u.elem(dst, 16),
                        8,
                        RefClass::Strided,
                    )));
                    ev.push(TraceEvent::Compute(1));
                }
                return ev;
            }
            // A butterfly stage over the core's own block.
            let s = if chunk < local_stages as usize {
                chunk as u32
            } else {
                chunk as u32 - 1
            };
            let stride = 1u64 << (s % local_stages.max(1));
            let half_block = elems_per_core / 2;
            for b in 0..half_block {
                let group = b / stride;
                let pos = b % stride;
                let i = e0 + group * stride * 2 + pos;
                let j = i + stride;
                ev.push(TraceEvent::Mem(MemRef::load(
                    u.elem(i, 16),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Mem(MemRef::load(
                    u.elem(j, 16),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Mem(MemRef::load(
                    tw.elem((pos * (half / stride.max(1))) % half, 16),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Compute(12));
                ev.push(TraceEvent::Mem(MemRef::store(
                    u.elem(i, 16),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Mem(MemRef::store(
                    u.elem(j, 16),
                    8,
                    RefClass::Strided,
                )));
            }
            ev
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSummary;

    #[test]
    fn fully_strided() {
        let ft = Ft::new(KernelCfg::new(4, Scale::Test));
        let s = TraceSummary::of(ft.core_trace(0));
        assert_eq!(s.random_noalias + s.random_unknown, 0);
        assert!(s.strided > 0);
        // 10 butterfly stages × 128 butterflies/core × 5 refs, plus the
        // transpose (256 elems × 2 refs).
        assert_eq!(s.mem_refs, 10 * 128 * 5 + 256 * 2);
    }

    #[test]
    fn transpose_scatters_across_blocks() {
        let ft = Ft::new(KernelCfg::new(4, Scale::Test));
        let u = ft.space.get(ft.u).clone();
        let elems_per_core = ft.n / 4;
        let own = |a: u64| (a - u.base) / 16 / elems_per_core == 0;
        // Core 0's transpose stores must leave its own block.
        let mut cross = 0;
        for ev in ft.core_trace(0) {
            if let TraceEvent::Mem(m) = ev {
                if m.is_store && u.contains(m.addr) && !own(m.addr) {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "the transpose must cross blocks");
    }

    #[test]
    fn butterfly_partners_differ_by_stride() {
        let ft = Ft::new(KernelCfg::new(2, Scale::Test));
        let u = ft.space.get(ft.u).clone();
        // In stage 0 the two loads of each butterfly are 16 bytes apart.
        let loads: Vec<u64> = ft
            .core_trace(0)
            .filter_map(|e| match e {
                TraceEvent::Mem(m) if !m.is_store && u.contains(m.addr) => Some(m.addr),
                _ => None,
            })
            .take(2)
            .collect();
        assert_eq!(loads[1] - loads[0], 16);
    }

    #[test]
    fn indices_in_bounds_across_all_stages() {
        let ft = Ft::new(KernelCfg::new(4, Scale::Test));
        for c in 0..4 {
            for ev in ft.core_trace(c) {
                if let TraceEvent::Mem(m) = ev {
                    assert!(ft.space.locate(m.addr).is_some(), "oob {:#x}", m.addr);
                }
            }
        }
    }
}
