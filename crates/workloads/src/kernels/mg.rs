//! MG — multigrid (NAS MG): V-cycles of 27-point stencil sweeps over a
//! grid hierarchy.
//!
//! Stencil neighbour offsets are compile-time constants, so the compiler
//! classifies the whole kernel strided and tiles planes into the SPM.
//! The trace models the classic plane-reuse schedule: per cell, the three
//! z-planes already sit in the tile, leaving seven distinct loads and one
//! store (the remaining 20 neighbours hit the tile registers).

use super::{chunked, Kernel, KernelCfg, Scale};
use crate::layout::{AddressSpace, ArrayId};
use crate::trace::{MemRef, RefClass, TraceEvent};

/// MG kernel instance.
pub struct Mg {
    cfg: KernelCfg,
    /// Edge length of the finest grid (power of two).
    dim: u64,
    levels: usize,
    vcycles: usize,
    space: AddressSpace,
    /// grid + rhs array per level, finest first.
    grids: Vec<(ArrayId, ArrayId)>,
}

impl Mg {
    pub fn new(cfg: KernelCfg) -> Self {
        let (dim, levels, vcycles) = match cfg.scale {
            Scale::Test => (8u64, 2, 1),
            Scale::Small => (16, 3, 2),
            Scale::Standard => (32, 4, 6),
        };
        let mut space = AddressSpace::new();
        let mut grids = Vec::new();
        for l in 0..levels {
            let d = dim >> l;
            assert!(d >= 2, "too many levels for the grid size");
            let cells = d * d * d;
            let g = space.alloc(format!("grid{l}"), cells * 8, true);
            let r = space.alloc(format!("rhs{l}"), cells * 8, true);
            grids.push((g, r));
        }
        Mg {
            cfg,
            dim,
            levels,
            vcycles,
            space,
            grids,
        }
    }

    /// Sweeps of one V-cycle, as (level, kind) pairs: smooth↓, restrict,
    /// coarse solve, prolongate↑, smooth↑.
    fn schedule(&self) -> Vec<(usize, Sweep)> {
        let mut s = Vec::new();
        for l in 0..self.levels - 1 {
            s.push((l, Sweep::Smooth));
            s.push((l, Sweep::Restrict));
        }
        s.push((self.levels - 1, Sweep::Smooth));
        for l in (0..self.levels - 1).rev() {
            s.push((l, Sweep::Prolongate));
            s.push((l, Sweep::Smooth));
        }
        s
    }
}

#[derive(Clone, Copy, Debug)]
enum Sweep {
    Smooth,
    Restrict,
    Prolongate,
}

impl Kernel for Mg {
    fn name(&self) -> &'static str {
        "MG"
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn cores(&self) -> usize {
        self.cfg.cores
    }

    fn core_trace(&self, core: usize) -> Box<dyn Iterator<Item = TraceEvent> + Send + '_> {
        assert!(core < self.cfg.cores);
        let cores = self.cfg.cores as u64;
        let dim = self.dim;
        let sched = self.schedule();
        let grids: Vec<_> = self
            .grids
            .iter()
            .map(|&(g, r)| (self.space.get(g).clone(), self.space.get(r).clone()))
            .collect();
        let sweeps_per_cycle = sched.len();
        let vcycles = self.vcycles;
        chunked(vcycles * sweeps_per_cycle, move |chunk| {
            let (level, sweep) = sched[chunk % sweeps_per_cycle];
            let d = dim >> level;
            let cells = d * d * d;
            let per_core = (cells / cores).max(1);
            let c0 = (core as u64 * per_core).min(cells);
            let c1 = (c0 + per_core).min(cells);
            let (grid, rhs) = &grids[level];
            let mut ev = Vec::with_capacity(((c1 - c0) * 9) as usize);
            for cell in c0..c1 {
                match sweep {
                    Sweep::Smooth => {
                        // Jacobi-style: read the grid (7-point), write
                        // the companion array — like NAS MG's resid/psinv
                        // pairs, sweeps never write what they read.
                        let x = cell % d;
                        let y = (cell / d) % d;
                        let z = cell / (d * d);
                        let at = |dx: i64, dy: i64, dz: i64| {
                            let xx = (x as i64 + dx).rem_euclid(d as i64) as u64;
                            let yy = (y as i64 + dy).rem_euclid(d as i64) as u64;
                            let zz = (z as i64 + dz).rem_euclid(d as i64) as u64;
                            zz * d * d + yy * d + xx
                        };
                        for (dx, dy, dz) in [
                            (0, 0, 0),
                            (1, 0, 0),
                            (-1, 0, 0),
                            (0, 1, 0),
                            (0, -1, 0),
                            (0, 0, 1),
                            (0, 0, -1),
                        ] {
                            ev.push(TraceEvent::Mem(MemRef::load(
                                grid.elem(at(dx, dy, dz), 8),
                                8,
                                RefClass::Strided,
                            )));
                        }
                        ev.push(TraceEvent::Compute(8));
                        ev.push(TraceEvent::Mem(MemRef::store(
                            rhs.elem(cell, 8),
                            8,
                            RefClass::Strided,
                        )));
                    }
                    Sweep::Restrict | Sweep::Prolongate => {
                        // Inter-grid transfer: read the smoothed values,
                        // write the grid for the next level's sweeps.
                        ev.push(TraceEvent::Mem(MemRef::load(
                            rhs.elem(cell, 8),
                            8,
                            RefClass::Strided,
                        )));
                        ev.push(TraceEvent::Compute(2));
                        ev.push(TraceEvent::Mem(MemRef::store(
                            grid.elem(cell, 8),
                            8,
                            RefClass::Strided,
                        )));
                    }
                }
            }
            ev
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSummary;

    #[test]
    fn fully_strided_and_nonempty() {
        let mg = Mg::new(KernelCfg::new(4, Scale::Test));
        let s = TraceSummary::of(mg.core_trace(0));
        assert!(s.mem_refs > 0);
        assert_eq!(s.random_noalias + s.random_unknown, 0);
    }

    #[test]
    fn schedule_is_a_v_cycle() {
        let mg = Mg::new(KernelCfg::new(2, Scale::Small));
        let sched = mg.schedule();
        // 3 levels: smooth/restrict ×2 down, coarse smooth, prolong/smooth
        // ×2 up = 2*2 + 1 + 2*2 = 9 sweeps.
        assert_eq!(sched.len(), 9);
        assert_eq!(sched[0].0, 0, "starts at the finest level");
        assert_eq!(sched[4].0, 2, "bottoms out at the coarsest");
        assert_eq!(sched[8].0, 0, "returns to the finest");
    }

    #[test]
    fn stencil_neighbours_wrap_in_bounds() {
        let mg = Mg::new(KernelCfg::new(2, Scale::Test));
        for c in 0..2 {
            for ev in mg.core_trace(c) {
                if let TraceEvent::Mem(m) = ev {
                    assert!(mg.space.locate(m.addr).is_some(), "oob {:#x}", m.addr);
                }
            }
        }
    }

    #[test]
    fn coarser_levels_touch_fewer_cells() {
        let mg = Mg::new(KernelCfg::new(1, Scale::Small));
        // grid0 is 16³ = 4096 cells, grid2 is 4³ = 64 cells.
        let g0 = mg.space.get(mg.grids[0].0).clone();
        let g2 = mg.space.get(mg.grids[2].0).clone();
        assert_eq!(g0.bytes / 8, 4096);
        assert_eq!(g2.bytes / 8, 64);
    }
}
