//! SP — scalar pentadiagonal solver (NAS SP): ADI line solves along the
//! three grid dimensions.
//!
//! Each time step factorises and solves pentadiagonal systems along x,
//! then y, then z lines.  All accesses are affine with dimension-dependent
//! strides (1, d, d²) — strided for the compiler, and a good test that the
//! SPM tiling pays off even for large strides.

use super::{chunked, Kernel, KernelCfg, Scale};
use crate::layout::{AddressSpace, ArrayId};
use crate::trace::{MemRef, RefClass, TraceEvent};

/// SP kernel instance.
pub struct Sp {
    cfg: KernelCfg,
    dim: u64,
    steps: usize,
    space: AddressSpace,
    u: ArrayId,
    lhs: ArrayId,
    rhs: ArrayId,
}

impl Sp {
    pub fn new(cfg: KernelCfg) -> Self {
        let (dim, steps) = match cfg.scale {
            Scale::Test => (8u64, 1),
            Scale::Small => (16, 2),
            Scale::Standard => (32, 8),
        };
        let cells = dim * dim * dim;
        let mut space = AddressSpace::new();
        let u = space.alloc("u", cells * 8, true);
        let lhs = space.alloc("lhs", cells * 8 * 5, true); // 5 diagonals
        let rhs = space.alloc("rhs", cells * 8, true);
        Sp {
            cfg,
            dim,
            steps,
            space,
            u,
            lhs,
            rhs,
        }
    }
}

impl Kernel for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn cores(&self) -> usize {
        self.cfg.cores
    }

    fn core_trace(&self, core: usize) -> Box<dyn Iterator<Item = TraceEvent> + Send + '_> {
        assert!(core < self.cfg.cores);
        let d = self.dim;
        let cores = self.cfg.cores as u64;
        let u = self.space.get(self.u).clone();
        let lhs = self.space.get(self.lhs).clone();
        let rhs = self.space.get(self.rhs).clone();
        // 3 directional sweeps per time step; lines of each sweep are
        // distributed over cores.
        let steps = self.steps;
        chunked(steps * 3, move |chunk| {
            let dir = chunk % 3;
            let stride = match dir {
                0 => 1,     // x lines
                1 => d,     // y lines
                _ => d * d, // z lines
            };
            let lines = d * d;
            let per_core = (lines / cores).max(1);
            let l0 = (core as u64 * per_core).min(lines);
            let l1 = (l0 + per_core).min(lines);
            let mut ev = Vec::with_capacity(((l1 - l0) * d * 7) as usize);
            for line in l0..l1 {
                // Base cell of this line: enumerate the plane orthogonal
                // to the sweep direction.
                let base = match dir {
                    0 => line * d,                      // (0, y, z)
                    1 => (line / d) * d * d + line % d, // (x, 0, z)
                    _ => line,                          // (x, y, 0)
                };
                // Thomas-style forward elimination then back substitution.
                for i in 0..d {
                    let cell = base + i * stride;
                    ev.push(TraceEvent::Mem(MemRef::load(
                        lhs.elem(cell * 5, 8),
                        8,
                        RefClass::Strided,
                    )));
                    ev.push(TraceEvent::Mem(MemRef::load(
                        lhs.elem(cell * 5 + 1, 8),
                        8,
                        RefClass::Strided,
                    )));
                    ev.push(TraceEvent::Mem(MemRef::load(
                        rhs.elem(cell, 8),
                        8,
                        RefClass::Strided,
                    )));
                    ev.push(TraceEvent::Compute(9));
                    ev.push(TraceEvent::Mem(MemRef::store(
                        rhs.elem(cell, 8),
                        8,
                        RefClass::Strided,
                    )));
                }
                for i in (0..d).rev() {
                    let cell = base + i * stride;
                    ev.push(TraceEvent::Mem(MemRef::load(
                        rhs.elem(cell, 8),
                        8,
                        RefClass::Strided,
                    )));
                    ev.push(TraceEvent::Compute(6));
                    ev.push(TraceEvent::Mem(MemRef::store(
                        u.elem(cell, 8),
                        8,
                        RefClass::Strided,
                    )));
                }
            }
            ev
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSummary;

    #[test]
    fn fully_strided() {
        let sp = Sp::new(KernelCfg::new(4, Scale::Test));
        let s = TraceSummary::of(sp.core_trace(0));
        assert!(s.mem_refs > 0);
        assert_eq!(s.random_noalias + s.random_unknown, 0);
        assert!(s.stores > 0 && s.loads > s.stores);
    }

    #[test]
    fn three_sweep_directions_use_three_strides() {
        let sp = Sp::new(KernelCfg::new(1, Scale::Test));
        let u = sp.space.get(sp.u).clone();
        // Collect the u-store addresses of the first line of each sweep
        // and check consecutive-element distances.
        let stores: Vec<u64> = sp
            .core_trace(0)
            .filter_map(|e| match e {
                TraceEvent::Mem(m) if m.is_store && u.contains(m.addr) => Some(m.addr),
                _ => None,
            })
            .collect();
        // Back substitution walks lines in reverse, so deltas are
        // negative; magnitude should be 8 (x), 8·8 (y), 8·64 (z) at the
        // appropriate phases.
        let d: i64 = stores[0] as i64 - stores[1] as i64;
        assert_eq!(d, 8, "x sweep is unit stride (reversed)");
    }

    #[test]
    fn all_addresses_in_bounds() {
        let sp = Sp::new(KernelCfg::new(4, Scale::Test));
        for c in 0..4 {
            for ev in sp.core_trace(c) {
                if let TraceEvent::Mem(m) = ev {
                    assert!(sp.space.locate(m.addr).is_some(), "oob {:#x}", m.addr);
                }
            }
        }
    }
}
