//! IS — integer sort (NAS IS): bucket-histogram key ranking.
//!
//! The key array streams with stride 1 (SPM-mapped); the histogram
//! updates `hist[key[i]]++` and the final scatter `out[rank] = key` are
//! data-dependent.  Because the compiler cannot prove the bucket/scatter
//! addresses distinct from the SPM-mapped key stream, they are classified
//! [`RefClass::RandomUnknown`] and exercise the hybrid protocol's filter
//! path heavily — IS is the stress case for unknown-alias handling.

use super::{chunked, mix64, Kernel, KernelCfg, Scale};
use crate::layout::{AddressSpace, ArrayId};
use crate::trace::{MemRef, RefClass, TraceEvent};

/// IS kernel instance.
pub struct Is {
    cfg: KernelCfg,
    n: u64,
    buckets: u64,
    space: AddressSpace,
    keys: ArrayId,
    hist: ArrayId,
    out: ArrayId,
}

impl Is {
    pub fn new(cfg: KernelCfg) -> Self {
        let (n, buckets) = match cfg.scale {
            Scale::Test => (1 << 10, 1 << 6),
            Scale::Small => (1 << 14, 1 << 10),
            Scale::Standard => (1 << 19, 1 << 12),
        };
        let n = (n / cfg.cores as u64).max(2) * cfg.cores as u64;
        let mut space = AddressSpace::new();
        let keys = space.alloc("keys", n * 4, true);
        let hist = space.alloc("hist", buckets * 4, false);
        let out = space.alloc("out", n * 4, false);
        Is {
            cfg,
            n,
            buckets,
            space,
            keys,
            hist,
            out,
        }
    }

    /// The key value at position `i` (test hook; the trace inlines it).
    #[cfg(test)]
    fn key_at(&self, i: u64) -> u64 {
        mix64(self.cfg.seed ^ i) % self.buckets
    }
}

impl Kernel for Is {
    fn name(&self) -> &'static str {
        "IS"
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn cores(&self) -> usize {
        self.cfg.cores
    }

    fn core_trace(&self, core: usize) -> Box<dyn Iterator<Item = TraceEvent> + Send + '_> {
        assert!(core < self.cfg.cores);
        let cores = self.cfg.cores as u64;
        let per_core = self.n / cores;
        let i0 = core as u64 * per_core;
        let seed = self.cfg.seed;
        let buckets = self.buckets;
        let bpc = (buckets / cores).max(1);
        let keys = self.space.get(self.keys).clone();
        let hist = self.space.get(self.hist).clone();
        let out = self.space.get(self.out).clone();
        // Chunk 0: histogram build; chunk 1: prefix sum over my buckets;
        // chunk 2: rank & scatter.
        chunked(3, move |phase| {
            let mut ev = Vec::new();
            match phase {
                0 => {
                    ev.reserve((per_core * 4) as usize);
                    for i in i0..i0 + per_core {
                        let k = mix64(seed ^ i) % buckets;
                        ev.push(TraceEvent::Mem(MemRef::load(
                            keys.elem(i, 4),
                            4,
                            RefClass::Strided,
                        )));
                        ev.push(TraceEvent::Mem(MemRef::load(
                            hist.elem(k, 4),
                            4,
                            RefClass::RandomUnknown,
                        )));
                        ev.push(TraceEvent::Mem(MemRef::store(
                            hist.elem(k, 4),
                            4,
                            RefClass::RandomUnknown,
                        )));
                        ev.push(TraceEvent::Compute(1));
                    }
                }
                1 => {
                    let b0 = core as u64 * bpc;
                    let hi = (b0 + bpc).min(buckets);
                    ev.reserve(((hi.saturating_sub(b0)) * 2) as usize);
                    for b in b0..hi {
                        ev.push(TraceEvent::Mem(MemRef::load(
                            hist.elem(b, 4),
                            4,
                            RefClass::Strided,
                        )));
                        ev.push(TraceEvent::Mem(MemRef::store(
                            hist.elem(b, 4),
                            4,
                            RefClass::Strided,
                        )));
                        ev.push(TraceEvent::Compute(1));
                    }
                }
                _ => {
                    ev.reserve((per_core * 4) as usize);
                    for i in i0..i0 + per_core {
                        let k = mix64(seed ^ i) % buckets;
                        ev.push(TraceEvent::Mem(MemRef::load(
                            keys.elem(i, 4),
                            4,
                            RefClass::Strided,
                        )));
                        ev.push(TraceEvent::Mem(MemRef::load(
                            hist.elem(k, 4),
                            4,
                            RefClass::RandomUnknown,
                        )));
                        // Scatter to the ranked position: approximate the
                        // rank with a hash so the trace stays stateless.
                        let pos = mix64(seed ^ (i << 1) ^ 0xDEAD) % keys_len(&out);
                        ev.push(TraceEvent::Mem(MemRef::store(
                            out.elem(pos, 4),
                            4,
                            RefClass::RandomUnknown,
                        )));
                        ev.push(TraceEvent::Compute(1));
                    }
                }
            }
            ev
        })
    }
}

fn keys_len(out: &crate::layout::ArrayDecl) -> u64 {
    out.bytes / 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSummary;

    #[test]
    fn heavy_unknown_alias_traffic() {
        let is = Is::new(KernelCfg::new(4, Scale::Test));
        let s = TraceSummary::of(is.core_trace(0));
        assert!(
            s.random_unknown as f64 > 0.4 * s.mem_refs as f64,
            "IS stresses the filter path: {}/{}",
            s.random_unknown,
            s.mem_refs
        );
        assert!(s.strided > 0);
    }

    #[test]
    fn histogram_hits_stay_in_hist() {
        let is = Is::new(KernelCfg::new(2, Scale::Test));
        let hist = is.space.get(is.hist).clone();
        let out = is.space.get(is.out).clone();
        for ev in is.core_trace(0) {
            if let TraceEvent::Mem(m) = ev {
                if m.class == RefClass::RandomUnknown {
                    assert!(
                        hist.contains(m.addr) || out.contains(m.addr),
                        "unknown ref outside hist/out: {:#x}",
                        m.addr
                    );
                }
            }
        }
    }

    #[test]
    fn keys_distribute_over_buckets() {
        let is = Is::new(KernelCfg::new(2, Scale::Test));
        let mut seen = std::collections::HashSet::new();
        for i in 0..is.n {
            seen.insert(is.key_at(i));
        }
        assert!(
            seen.len() as u64 > is.buckets / 2,
            "keys must spread over buckets"
        );
    }
}
