//! CG — conjugate gradient (NAS CG): sparse matrix–vector products with a
//! random sparsity pattern, plus the vector kernels of the CG iteration.
//!
//! The dominant loop is the SpMV `q = A·p`:
//!
//! ```text
//! for i in my_rows:
//!     for j in rowptr[i] .. rowptr[i+1]:
//!         q[i] += vals[j] * p[colidx[j]]     // p gathered: unknown alias
//! ```
//!
//! `rowptr`, `colidx`, `vals` and `q` stream with stride 1 (compiler maps
//! them to the SPM); the gather `p[colidx[j]]` is irregular *and* `p` is
//! itself SPM-mapped for the vector kernels, so the gather is the
//! paper's [`RefClass::RandomUnknown`] case the hybrid protocol exists
//! for.

use super::{chunked, mix64, Kernel, KernelCfg, Scale};
use crate::layout::{AddressSpace, ArrayDecl, ArrayId};
use crate::trace::{MemRef, RefClass, TraceEvent};

/// CG kernel instance. See the module docs for the access pattern.
pub struct Cg {
    cfg: KernelCfg,
    n: u64,
    nnz_per_row: u64,
    iters: usize,
    space: AddressSpace,
    rowptr: ArrayId,
    colidx: ArrayId,
    vals: ArrayId,
    p: ArrayId,
    q: ArrayId,
    x: ArrayId,
    r: ArrayId,
}

impl Cg {
    pub fn new(cfg: KernelCfg) -> Self {
        let (n, nnz_per_row, iters) = match cfg.scale {
            Scale::Test => (256, 4, 2),
            Scale::Small => (4096, 8, 4),
            Scale::Standard => (16384, 12, 8),
        };
        let n = (n / cfg.cores as u64).max(4) * cfg.cores as u64;
        let mut space = AddressSpace::new();
        let rowptr = space.alloc("rowptr", (n + 1) * 8, true);
        let colidx = space.alloc("colidx", n * nnz_per_row * 4, true);
        let vals = space.alloc("vals", n * nnz_per_row * 8, true);
        // The compiler's cost model keeps `p` in the cache hierarchy:
        // it is gathered by every row, and serving those word-sized
        // unknown-alias reads from remote scratchpads would cost a NoC
        // round trip each — the caches' replication is the right home
        // for read-shared gathered data.
        let p = space.alloc("p", n * 8, false);
        let q = space.alloc("q", n * 8, true);
        let x = space.alloc("x", n * 8, true);
        let r = space.alloc("r", n * 8, true);
        Cg {
            cfg,
            n,
            nnz_per_row,
            iters,
            space,
            rowptr,
            colidx,
            vals,
            p,
            q,
            x,
            r,
        }
    }

    fn arr(&self, id: ArrayId) -> &ArrayDecl {
        self.space.get(id)
    }
}

impl Kernel for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn cores(&self) -> usize {
        self.cfg.cores
    }

    fn core_trace(&self, core: usize) -> Box<dyn Iterator<Item = TraceEvent> + Send + '_> {
        assert!(core < self.cfg.cores);
        let rows = self.n / self.cfg.cores as u64;
        let row0 = core as u64 * rows;
        let nnz = self.nnz_per_row;
        let n = self.n;
        let seed = self.cfg.seed;
        let (rowptr, colidx, vals, p, q, x, r) = (
            self.arr(self.rowptr).clone(),
            self.arr(self.colidx).clone(),
            self.arr(self.vals).clone(),
            self.arr(self.p).clone(),
            self.arr(self.q).clone(),
            self.arr(self.x).clone(),
            self.arr(self.r).clone(),
        );
        chunked(self.iters, move |_it| {
            let mut ev = Vec::with_capacity((rows * (3 * nnz + 3) + rows * 6) as usize);
            // SpMV q[my rows] = A * p
            for i in row0..row0 + rows {
                ev.push(TraceEvent::Mem(MemRef::load(
                    rowptr.elem(i, 8),
                    8,
                    RefClass::Strided,
                )));
                for j in 0..nnz {
                    let k = i * nnz + j;
                    ev.push(TraceEvent::Mem(MemRef::load(
                        colidx.elem(k, 4),
                        4,
                        RefClass::Strided,
                    )));
                    ev.push(TraceEvent::Mem(MemRef::load(
                        vals.elem(k, 8),
                        8,
                        RefClass::Strided,
                    )));
                    // The gather: pseudo-random column within a band
                    // around the diagonal — FEM/thermal matrices are
                    // banded, so most gathers stay near the row's own
                    // partition. Aliasing is still unknown to the
                    // compiler.
                    let band = (n / 16).max(8);
                    let off = mix64(seed ^ (i << 20) ^ j) % (2 * band);
                    let col = (i + n + off - band) % n;
                    ev.push(TraceEvent::Mem(MemRef::load(
                        p.elem(col, 8),
                        8,
                        RefClass::RandomUnknown,
                    )));
                    ev.push(TraceEvent::Compute(2));
                }
                ev.push(TraceEvent::Mem(MemRef::store(
                    q.elem(i, 8),
                    8,
                    RefClass::Strided,
                )));
            }
            // dot(p, q) over my partition.
            for i in row0..row0 + rows {
                ev.push(TraceEvent::Mem(MemRef::load(
                    p.elem(i, 8),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Mem(MemRef::load(
                    q.elem(i, 8),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Compute(1));
            }
            // x += alpha p ; r -= alpha q (fused sweep).
            for i in row0..row0 + rows {
                ev.push(TraceEvent::Mem(MemRef::load(
                    x.elem(i, 8),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Mem(MemRef::load(
                    r.elem(i, 8),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Mem(MemRef::store(
                    x.elem(i, 8),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Mem(MemRef::store(
                    r.elem(i, 8),
                    8,
                    RefClass::Strided,
                )));
                ev.push(TraceEvent::Compute(2));
            }
            ev
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSummary;

    #[test]
    fn mix_of_strided_and_unknown() {
        let cg = Cg::new(KernelCfg::new(4, Scale::Test));
        let s = TraceSummary::of(cg.core_trace(0));
        assert!(s.random_unknown > 0, "the gather must be unknown-alias");
        assert!(s.strided > s.random_unknown, "row structures dominate");
        assert_eq!(s.random_noalias, 0);
    }

    #[test]
    fn gathers_stay_inside_p() {
        let cg = Cg::new(KernelCfg::new(2, Scale::Test));
        let p = cg.arr(cg.p).clone();
        for ev in cg.core_trace(1) {
            if let TraceEvent::Mem(m) = ev {
                if m.class == RefClass::RandomUnknown {
                    assert!(p.contains(m.addr), "gather outside p: {:#x}", m.addr);
                }
            }
        }
    }

    #[test]
    fn cores_partition_disjoint_rows() {
        let cg = Cg::new(KernelCfg::new(4, Scale::Test));
        let q = cg.arr(cg.q).clone();
        let stores = |c: usize| -> Vec<u64> {
            cg.core_trace(c)
                .filter_map(|e| match e {
                    TraceEvent::Mem(m) if m.is_store && q.contains(m.addr) => Some(m.addr),
                    _ => None,
                })
                .collect()
        };
        let s0 = stores(0);
        let s1 = stores(1);
        assert!(!s0.is_empty());
        assert!(s0.iter().all(|a| !s1.contains(a)));
    }

    #[test]
    fn all_arrays_but_p_spm_mapped() {
        let cg = Cg::new(KernelCfg::new(2, Scale::Test));
        assert_eq!(cg.space().spm_ranges().len(), 6);
        assert!(!cg.arr(cg.p).spm_mapped, "gathered vector stays cached");
    }
}
