//! # raa-workloads — NAS-like memory reference stream generators
//!
//! The paper's memory-wall experiment (Fig. 1) runs six NAS Parallel
//! Benchmarks on a simulated 64-core processor. We cannot ship the NAS
//! binaries, so this crate generates *access-pattern-faithful* reference
//! streams for the dominant loop nests of each kernel:
//!
//! | kernel | dominant pattern | SPM-friendly? |
//! |--------|------------------|---------------|
//! | CG     | SpMV: strided row structures + random gather of `p`      | partly |
//! | EP     | register-resident RNG, almost no memory traffic           | no (and needs none) |
//! | FT     | FFT passes: strided butterflies + twiddle tables          | fully |
//! | IS     | histogram ranking: strided keys + random bucket updates   | partly |
//! | MG     | 27-point stencil sweeps over a grid hierarchy             | fully |
//! | SP     | pentadiagonal line solves along x/y/z                     | fully |
//!
//! Every memory reference carries the *compiler classification* of the
//! hybrid-memory work the paper builds on (Alvarez et al., ISCA'15):
//! [`RefClass::Strided`] references are tiled into scratchpads,
//! [`RefClass::RandomNoAlias`] references go to the cache hierarchy, and
//! [`RefClass::RandomUnknown`] references (e.g. `p[colidx[j]]`, which may
//! alias an SPM-mapped range) must be resolved by the hardware
//! filter/directory at run time.
//!
//! Streams are deterministic (seeded) and lazily generated, so a 64-core
//! trace never materialises in memory.

pub mod kernels;
pub mod layout;
pub mod synthetic;
pub mod trace;
pub mod validate;

pub use kernels::{all_kernels, Kernel, KernelCfg, Scale};
pub use layout::{AddressSpace, ArrayDecl, ArrayId};
pub use trace::{MemRef, RefClass, TraceEvent};
pub use validate::{validate_kernel, ValidationReport};
