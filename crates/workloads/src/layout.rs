//! Address-space layout for kernel arrays.
//!
//! Kernels declare their arrays once; the [`AddressSpace`] places them at
//! page-aligned base addresses.  Declarations carry the compiler's verdict
//! on whether the array is *SPM-mappable* (its accesses are strided and
//! can be tiled into the scratchpad) — the hybrid machine uses this to
//! program its SPM directory ranges.

/// Index of an array within an [`AddressSpace`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ArrayId(pub usize);

/// One placed array.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    pub id: ArrayId,
    pub name: String,
    /// Base byte address (page aligned).
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
    /// True when the compiler maps this array's strided accesses to SPMs.
    pub spm_mapped: bool,
}

impl ArrayDecl {
    /// Byte address of element `i` with element size `esz`.
    pub fn elem(&self, i: u64, esz: u64) -> u64 {
        debug_assert!(
            (i + 1) * esz <= self.bytes,
            "{}[{}] out of bounds",
            self.name,
            i
        );
        self.base + i * esz
    }

    /// Does `addr` fall inside this array?
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.bytes
    }
}

const PAGE: u64 = 4096;

/// A growing address space that places arrays at page-aligned bases,
/// starting above the zero page.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    arrays: Vec<ArrayDecl>,
    next_base: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    pub fn new() -> Self {
        AddressSpace {
            arrays: Vec::new(),
            next_base: PAGE,
        }
    }

    /// Place an array of `bytes` bytes. Returns its declaration.
    pub fn alloc(&mut self, name: impl Into<String>, bytes: u64, spm_mapped: bool) -> ArrayId {
        let id = ArrayId(self.arrays.len());
        let base = self.next_base;
        let padded = bytes.div_ceil(PAGE) * PAGE;
        self.next_base += padded.max(PAGE);
        self.arrays.push(ArrayDecl {
            id,
            name: name.into(),
            base,
            bytes,
            spm_mapped,
        });
        id
    }

    pub fn get(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The SPM-mapped address ranges `(base, end)`, for programming the
    /// hybrid machine's SPM directory.
    pub fn spm_ranges(&self) -> Vec<(u64, u64)> {
        self.arrays
            .iter()
            .filter(|a| a.spm_mapped)
            .map(|a| (a.base, a.base + a.bytes))
            .collect()
    }

    /// Total footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.next_base - PAGE
    }

    /// Which array contains `addr`, if any.
    pub fn locate(&self, addr: u64) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.contains(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_are_page_aligned_and_disjoint() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc("a", 100, true);
        let b = asp.alloc("b", 5000, false);
        let c = asp.alloc("c", 4096, true);
        let (a, b, c) = (asp.get(a).clone(), asp.get(b).clone(), asp.get(c).clone());
        for d in [&a, &b, &c] {
            assert_eq!(d.base % PAGE, 0, "{} not page aligned", d.name);
        }
        assert!(a.base + a.bytes <= b.base);
        assert!(b.base + b.bytes <= c.base);
        assert!(a.base >= PAGE, "zero page is never allocated");
    }

    #[test]
    fn elem_addressing() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc("x", 80, true);
        let d = asp.get(a);
        assert_eq!(d.elem(0, 8), d.base);
        assert_eq!(d.elem(9, 8), d.base + 72);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn elem_bounds_checked_in_debug() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc("x", 80, true);
        let _ = asp.get(a).elem(10, 8);
    }

    #[test]
    fn spm_ranges_filters_mapped_arrays() {
        let mut asp = AddressSpace::new();
        asp.alloc("s1", 100, true);
        asp.alloc("r", 100, false);
        asp.alloc("s2", 100, true);
        let ranges = asp.spm_ranges();
        assert_eq!(ranges.len(), 2);
        for (lo, hi) in ranges {
            assert!(lo < hi);
        }
    }

    #[test]
    fn locate_finds_owner() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc("a", 100, true);
        let base = asp.get(a).base;
        assert_eq!(asp.locate(base + 50).unwrap().name, "a");
        assert!(asp.locate(0).is_none());
        assert!(asp.locate(base + 100).is_none(), "end is exclusive");
    }

    #[test]
    fn footprint_accumulates() {
        let mut asp = AddressSpace::new();
        assert_eq!(asp.footprint(), 0);
        asp.alloc("a", 1, false);
        assert_eq!(asp.footprint(), PAGE);
        asp.alloc("b", PAGE + 1, false);
        assert_eq!(asp.footprint(), 3 * PAGE);
    }
}
