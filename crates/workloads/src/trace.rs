//! Trace event model: classified memory references + compute gaps.

/// The compiler's static classification of a memory reference, following
/// the hybrid-memory coherence protocol of the paper (§2):
///
/// * `Strided` — affine accesses the compiler tiles into the scratchpad
///   via a software cache (DMA in/out per tile).
/// * `RandomNoAlias` — irregular accesses proven not to alias any
///   SPM-mapped array: served directly by the cache hierarchy.
/// * `RandomUnknown` — irregular accesses with *unknown aliasing hazards*
///   against SPM-mapped data: the hardware filter + SPM directory decide
///   at execution which memory holds the valid copy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RefClass {
    Strided,
    RandomNoAlias,
    RandomUnknown,
}

/// A single memory reference from a core's instruction stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// Access width in bytes (4 or 8 in these kernels).
    pub size: u8,
    /// Store (true) or load (false).
    pub is_store: bool,
    /// Static classification.
    pub class: RefClass,
}

impl MemRef {
    pub fn load(addr: u64, size: u8, class: RefClass) -> Self {
        MemRef {
            addr,
            size,
            is_store: false,
            class,
        }
    }

    pub fn store(addr: u64, size: u8, class: RefClass) -> Self {
        MemRef {
            addr,
            size,
            is_store: true,
            class,
        }
    }

    /// The 64-byte cache line containing this reference.
    pub fn line(&self) -> u64 {
        self.addr >> 6
    }
}

/// One event of a core's trace: a memory reference, `n` cycles of pure
/// computation, or a bulk-synchronous barrier (the NAS kernels are BSP:
/// sweeps/phases are separated by barriers, and the machine must not
/// let cores race ahead into the next sweep).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    Mem(MemRef),
    Compute(u32),
    Barrier,
}

impl TraceEvent {
    pub fn as_mem(&self) -> Option<&MemRef> {
        match self {
            TraceEvent::Mem(m) => Some(m),
            _ => None,
        }
    }
}

/// Summary statistics of a trace (used by tests and the workload tables).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceSummary {
    pub mem_refs: u64,
    pub loads: u64,
    pub stores: u64,
    pub strided: u64,
    pub random_noalias: u64,
    pub random_unknown: u64,
    pub compute_cycles: u64,
    pub barriers: u64,
}

impl TraceSummary {
    /// Accumulate one event.
    pub fn add(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Barrier => self.barriers += 1,
            TraceEvent::Compute(c) => self.compute_cycles += *c as u64,
            TraceEvent::Mem(m) => {
                self.mem_refs += 1;
                if m.is_store {
                    self.stores += 1;
                } else {
                    self.loads += 1;
                }
                match m.class {
                    RefClass::Strided => self.strided += 1,
                    RefClass::RandomNoAlias => self.random_noalias += 1,
                    RefClass::RandomUnknown => self.random_unknown += 1,
                }
            }
        }
    }

    /// Summarise a whole stream.
    pub fn of(events: impl Iterator<Item = TraceEvent>) -> Self {
        let mut s = TraceSummary::default();
        for ev in events {
            s.add(&ev);
        }
        s
    }

    /// Fraction of memory references classified strided.
    pub fn strided_fraction(&self) -> f64 {
        if self.mem_refs == 0 {
            0.0
        } else {
            self.strided as f64 / self.mem_refs as f64
        }
    }

    /// Memory references per compute cycle (memory intensity).
    pub fn mem_intensity(&self) -> f64 {
        if self.compute_cycles == 0 {
            f64::INFINITY
        } else {
            self.mem_refs as f64 / self.compute_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        assert_eq!(MemRef::load(0, 8, RefClass::Strided).line(), 0);
        assert_eq!(MemRef::load(63, 1, RefClass::Strided).line(), 0);
        assert_eq!(MemRef::load(64, 8, RefClass::Strided).line(), 1);
        assert_eq!(MemRef::load(6400, 8, RefClass::Strided).line(), 100);
    }

    #[test]
    fn summary_counts() {
        let events = vec![
            TraceEvent::Mem(MemRef::load(0, 8, RefClass::Strided)),
            TraceEvent::Mem(MemRef::store(8, 8, RefClass::RandomUnknown)),
            TraceEvent::Compute(10),
            TraceEvent::Mem(MemRef::load(16, 4, RefClass::RandomNoAlias)),
        ];
        let s = TraceSummary::of(events.into_iter());
        assert_eq!(s.mem_refs, 3);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.strided, 1);
        assert_eq!(s.random_noalias, 1);
        assert_eq!(s.random_unknown, 1);
        assert_eq!(s.compute_cycles, 10);
        assert!((s.strided_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = TraceSummary::of(std::iter::empty());
        assert_eq!(s.mem_refs, 0);
        assert_eq!(s.strided_fraction(), 0.0);
        assert!(s.mem_intensity().is_infinite());
    }
}
